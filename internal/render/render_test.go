package render

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/metric"
)

func renderFig1(t *testing.T, opt Options) string {
	t.Helper()
	tree := core.Fig1Tree()
	var b strings.Builder
	if err := RenderTree(&b, tree, opt); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestRenderTreeBasics(t *testing.T) {
	out := renderFig1(t, Options{})
	if !strings.Contains(out, "scope") || !strings.Contains(out, "cost (I)") || !strings.Contains(out, "cost (E)") {
		t.Fatalf("header missing:\n%s", out)
	}
	for _, want := range []string{"m", "=> f", "=> g", "=> h", "loop at file2.c: 8", "loop at file2.c: 9", "file2.c: 9"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
	// Percent annotations against the total of 10: m shows 100.0%.
	if !strings.Contains(out, "100.0%") {
		t.Fatalf("missing percent annotation:\n%s", out)
	}
	// m's exclusive is zero: its row must end with a blank cell, not
	// "0".
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, " m ") || strings.HasSuffix(strings.TrimRight(line, " "), " m") {
			if strings.Contains(line, " 0 ") || strings.HasSuffix(line, "0") {
				t.Fatalf("zero rendered instead of blank: %q", line)
			}
		}
	}
}

func TestRenderSortsByMetric(t *testing.T) {
	out := renderFig1(t, Options{})
	// Under m, f (incl 7) must appear before g3 (incl 3).
	fIdx := strings.Index(out, "=> f")
	gIdx := strings.Index(out, "=> g")
	if fIdx < 0 || gIdx < 0 || fIdx > gIdx {
		t.Fatalf("children not sorted by inclusive cost:\n%s", out)
	}
}

func TestRenderMaxDepth(t *testing.T) {
	full := renderFig1(t, Options{})
	shallow := renderFig1(t, Options{MaxDepth: 2})
	if len(shallow) >= len(full) {
		t.Fatal("MaxDepth had no effect")
	}
	if strings.Contains(shallow, "loop at") {
		t.Fatalf("depth-2 render shows deep scopes:\n%s", shallow)
	}
}

func TestRenderTopN(t *testing.T) {
	out := renderFig1(t, Options{TopN: 1})
	if !strings.Contains(out, "more)") {
		t.Fatalf("TopN elision marker missing:\n%s", out)
	}
}

func TestRenderHighlightHotPath(t *testing.T) {
	tree := core.Fig1Tree()
	hp := core.HotPath(tree.Root, 0, 0.5)
	hl := map[*core.Node]bool{}
	for _, n := range hp {
		hl[n] = true
	}
	var b strings.Builder
	if err := RenderTree(&b, tree, Options{Highlight: hl}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	stars := strings.Count(out, "\n*")
	if stars < len(hp)-2 { // root is not rendered
		t.Fatalf("hot path marks = %d, want >= %d:\n%s", stars, len(hp)-2, out)
	}
}

func TestRenderCallersAndFlat(t *testing.T) {
	tree := core.Fig1Tree()
	cv := core.BuildCallersView(tree)
	var b strings.Builder
	if err := RenderCallers(&b, cv, tree, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "g") || !strings.Contains(b.String(), "m") {
		t.Fatalf("callers render missing rows:\n%s", b.String())
	}

	fv := core.BuildFlatView(tree)
	b.Reset()
	if err := RenderFlat(&b, fv, tree, Options{}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"file1.c", "file2.c", "=> h", "loop at file2.c: 8"} {
		if !strings.Contains(out, want) {
			t.Fatalf("flat render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderExplicitColumns(t *testing.T) {
	tree := core.Fig1Tree()
	var b strings.Builder
	err := RenderTree(&b, tree, Options{Columns: []Column{{MetricID: 0, Inclusive: true}}})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, "(E)") {
		t.Fatalf("exclusive column rendered despite explicit columns:\n%s", out)
	}
}

func TestRenderNoSourceMarker(t *testing.T) {
	reg := metric.NewRegistry()
	if _, err := reg.AddRaw("c", "cycles", 1); err != nil {
		t.Fatal(err)
	}
	tree := core.NewTree("x", reg)
	main := tree.Root.Child(core.Key{Kind: core.KindFrame, Name: core.Sym("main")}, true)
	ms := main.Child(core.Key{Kind: core.KindFrame, Name: core.Sym("memset")}, true)
	ms.NoSource = true
	ms.CallLine = 2
	s := ms.Child(core.Key{Kind: core.KindStmt, Line: 1}, true)
	s.Base.Add(0, 5)
	tree.ComputeMetrics()
	var b strings.Builder
	if err := RenderTree(&b, tree, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "memset [bin]") {
		t.Fatalf("binary-only marker missing:\n%s", b.String())
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, ""},
		{3, "3"},
		{1234, "1234"},
		{3.5, "3.50"},
		{12345, "1.23e+04"},
		{1.25e9, "1.25e+09"},
		{0.001, "1.00e-03"},
		{-12345, "-1.23e+04"},
		{-3, "-3"},
	}
	for _, c := range cases {
		if got := FormatValue(c.v); got != c.want {
			t.Errorf("FormatValue(%g) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestTrunc(t *testing.T) {
	if trunc("abcdef", 10) != "abcdef" {
		t.Fatal("short string truncated")
	}
	if got := trunc("abcdefghij", 8); got != "abcde..." || len(got) != 8 {
		t.Fatalf("trunc = %q", got)
	}
	if got := trunc("abcdef", 2); got != "ab" {
		t.Fatalf("tiny trunc = %q", got)
	}
}

func TestRenderDeterministic(t *testing.T) {
	a := renderFig1(t, Options{})
	b := renderFig1(t, Options{})
	if a != b {
		t.Fatal("render not deterministic")
	}
}
