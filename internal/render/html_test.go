package render

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/metric"
)

func TestRenderHTMLBasics(t *testing.T) {
	tree := core.Fig1Tree()
	var b strings.Builder
	err := RenderHTML(&b, "Fig1", tree.Root.Children, tree.Reg, Options{Totals: tree.Total})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"<title>Fig1</title>",
		"<details", "</details>",
		"loop at file2.c: 8",
		"cost (I)", "cost (E)",
		"100.0%",
		"</body></html>",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	// Details elements balance.
	if strings.Count(out, "<details") != strings.Count(out, "</details>") {
		t.Fatal("unbalanced <details>")
	}
	// Zero cells stay blank: no ">0<" cell content for m's exclusive.
	if strings.Contains(out, `<span class="m">0</span>`) {
		t.Fatal("zero rendered instead of blank")
	}
}

func TestRenderHTMLEscaping(t *testing.T) {
	reg := metric.NewRegistry()
	if _, err := reg.AddRaw("c<&>", "cycles", 1); err != nil {
		t.Fatal(err)
	}
	tree := core.NewTree("x", reg)
	fr := tree.Root.Child(core.Key{Kind: core.KindFrame, Name: core.Sym("evil<script>alert(1)</script>")}, true)
	st := fr.Child(core.Key{Kind: core.KindStmt, File: core.Sym("a&b.c"), Line: 1}, true)
	st.Base.Add(0, 3)
	tree.ComputeMetrics()
	var b strings.Builder
	if err := RenderHTML(&b, "t<&>t", tree.Root.Children, tree.Reg, Options{}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, "<script>") {
		t.Fatal("label not escaped")
	}
	if !strings.Contains(out, "evil&lt;script&gt;") {
		t.Fatalf("escaped label missing:\n%s", out)
	}
	if !strings.Contains(out, "t&lt;&amp;&gt;t") {
		t.Fatal("title not escaped")
	}
}

func TestRenderHTMLHighlightAndLimits(t *testing.T) {
	tree := core.Fig1Tree()
	hl := map[*core.Node]bool{}
	for _, n := range core.HotPath(tree.Root, 0, 0.5) {
		hl[n] = true
	}
	var b strings.Builder
	err := RenderHTML(&b, "hot", tree.Root.Children, tree.Reg, Options{
		Highlight: hl, Totals: tree.Total, TopN: 1, MaxDepth: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `class="hot"`) && !strings.Contains(out, "leaf hot") {
		t.Fatalf("hot path not highlighted:\n%s", out)
	}
	if !strings.Contains(out, "more)") {
		t.Fatalf("top-N elision missing:\n%s", out)
	}
	// Depth limit: the statement at file2.c: 9 sits at depth 7 and must
	// be absent.
	if strings.Contains(out, "file2.c: 9<") {
		t.Fatal("depth limit ignored")
	}
}

func TestRenderHTMLReportAllViews(t *testing.T) {
	tree := core.Fig1Tree()
	var b strings.Builder
	if err := RenderHTMLReport(&b, tree, "toy", 0, Options{}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Calling Context View", "Callers View", "Flat View", "file1.c"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	// Negative hot metric skips hot-path analysis.
	b.Reset()
	if err := RenderHTMLReport(&b, tree, "toy", -1, Options{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "leaf hot") {
		t.Fatal("hot path highlighted despite being disabled")
	}
}
