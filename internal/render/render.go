// Package render is the presentation layer standing in for hpcviewer's
// Eclipse GUI: a deterministic tree-tabular renderer over the views of
// internal/core. It implements the presentation principles of Sections V
// and VII that are testable in text form:
//
//   - navigation pane plus metric pane, one scope per line, with call site
//     and callee fused on a single line;
//   - every sibling list sorted by the selected (possibly derived) metric;
//   - scientific notation with a percent-of-total annotation ("1.25e+04
//     41.4%") instead of "naively long and painful numbers";
//   - blank cells for zero values;
//   - sparse presentation: scopes without data never appear (they are
//     never created — see internal/metric's sparse vectors);
//   - depth and top-N truncation with explicit elision markers, and
//     hot-path highlighting.
package render

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/metric"
)

// Column selects one metric column and flavor for the metric pane.
type Column struct {
	// MetricID is the registry column.
	MetricID int
	// Inclusive selects the inclusive flavor; otherwise exclusive.
	Inclusive bool
}

// Options controls rendering.
type Options struct {
	// Columns lists the metric pane's columns; nil renders every
	// registry column as an (inclusive, exclusive) pair.
	Columns []Column
	// Sort orders each sibling list; the zero value sorts by column 0
	// inclusive, descending — hpcviewer's default.
	Sort core.SortSpec
	// NoSort preserves the existing child order.
	NoSort bool
	// MaxDepth bounds the rendered depth (0 = unlimited).
	MaxDepth int
	// TopN bounds children shown per scope, eliding the rest with a
	// summary line (0 = all).
	TopN int
	// Totals supplies the percent denominators per metric column; if
	// nil, percent annotations are omitted.
	Totals func(metricID int) float64
	// Highlight marks scopes (e.g. a hot path) with a leading marker.
	Highlight map[*core.Node]bool
	// Value, when non-nil, supplies every metric cell instead of the
	// node's own Incl/Excl views. Sessions overlaying private derived
	// columns on a shared database route cell reads through it; for
	// columns resident in the node's store it must return exactly
	// n.Incl.Get / n.Excl.Get, keeping output byte-identical.
	Value func(n *core.Node, metricID int, inclusive bool) float64
}

// value reads one metric cell, via the Value override when set.
func (o *Options) value(n *core.Node, metricID int, inclusive bool) float64 {
	if o.Value != nil {
		return o.Value(n, metricID, inclusive)
	}
	if inclusive {
		return n.Incl.Get(metricID)
	}
	return n.Excl.Get(metricID)
}

// Render writes the forest as a tree table.
func Render(w io.Writer, roots []*core.Node, reg *metric.Registry, opt Options) error {
	cols := opt.Columns
	if cols == nil {
		for _, d := range reg.Columns() {
			cols = append(cols, Column{MetricID: d.ID, Inclusive: true}, Column{MetricID: d.ID, Inclusive: false})
		}
	}
	r := renderer{w: w, reg: reg, opt: opt, cols: cols}
	if err := r.header(); err != nil {
		return err
	}
	scopes := append([]*core.Node(nil), roots...)
	if !opt.NoSort {
		core.SortScopes(scopes, opt.Sort)
	}
	for _, s := range scopes {
		if err := r.node(s, 0); err != nil {
			return err
		}
	}
	return nil
}

// RenderTree renders a CCT from its root's children with percent
// denominators taken from the root (the Calling Context View).
func RenderTree(w io.Writer, t *core.Tree, opt Options) error {
	if opt.Totals == nil {
		opt.Totals = t.Total
	}
	return Render(w, t.Root.Children, t.Reg, opt)
}

// RenderCallers expands (concurrently, one goroutine per CPU) and renders
// a Callers View. totals should come from the originating tree.
func RenderCallers(w io.Writer, v *core.CallersView, t *core.Tree, opt Options) error {
	if err := v.ExpandAllParallel(0); err != nil {
		return err
	}
	if opt.Totals == nil {
		opt.Totals = t.Total
	}
	return Render(w, v.Roots, v.Reg, opt)
}

// RenderFlat renders a Flat View.
func RenderFlat(w io.Writer, v *core.FlatView, t *core.Tree, opt Options) error {
	if opt.Totals == nil {
		opt.Totals = t.Total
	}
	return Render(w, v.Roots, v.Reg, opt)
}

const (
	cellWidth  = 17 // "1.25e+04  41.4%"
	labelWidth = 44
)

// Row is one visible line of a view: a scope at a display depth. The
// interactive session (internal/viewer) computes visibility itself —
// expansion state, zooming, flattening — and hands rows here for
// formatting.
type Row struct {
	Node *core.Node
	// Depth is the indentation level.
	Depth int
	// HasHidden marks scopes whose children are currently collapsed;
	// rendered with a '+' expander like a closed tree node.
	HasHidden bool
}

// RenderRows writes a header and the given rows without any recursion,
// sorting or truncation of its own.
func RenderRows(w io.Writer, rows []Row, reg *metric.Registry, opt Options) error {
	cols := opt.Columns
	if cols == nil {
		for _, d := range reg.Columns() {
			cols = append(cols, Column{MetricID: d.ID, Inclusive: true}, Column{MetricID: d.ID, Inclusive: false})
		}
	}
	r := renderer{w: w, reg: reg, opt: opt, cols: cols}
	if err := r.header(); err != nil {
		return err
	}
	for i, row := range rows {
		if err := r.row(i, row); err != nil {
			return err
		}
	}
	return nil
}

// row writes one numbered line (the interactive session addresses scopes
// by these numbers).
func (r *renderer) row(idx int, row Row) error {
	var b strings.Builder
	mark := " "
	if r.opt.Highlight[row.Node] {
		mark = "*"
	}
	expander := " "
	if row.HasHidden {
		expander = "+"
	}
	label := fmt.Sprintf("%3d %s%s%s%s%s", idx, mark, strings.Repeat("  ", row.Depth), expander, glyph(row.Node), row.Node.Label())
	if row.Node.NoSource && (row.Node.Kind == core.KindFrame || row.Node.Kind == core.KindProc || row.Node.Kind == core.KindCallSite) {
		label += " [bin]"
	}
	fmt.Fprintf(&b, "%-*s", labelWidth, trunc(label, labelWidth))
	for _, c := range r.cols {
		v := r.opt.value(row.Node, c.MetricID, c.Inclusive)
		fmt.Fprintf(&b, " %*s", cellWidth, r.cell(c.MetricID, v))
	}
	_, err := io.WriteString(r.w, strings.TrimRight(b.String(), " ")+"\n")
	return err
}

type renderer struct {
	w    io.Writer
	reg  *metric.Registry
	opt  Options
	cols []Column
}

func (r *renderer) header() error {
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s", labelWidth, "scope")
	for _, c := range r.cols {
		d := r.reg.ByID(c.MetricID)
		name := "?"
		if d != nil {
			name = d.Name
		}
		flavor := "(E)"
		if c.Inclusive {
			flavor = "(I)"
		}
		fmt.Fprintf(&b, " %*s", cellWidth, trunc(name+" "+flavor, cellWidth))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", labelWidth+(cellWidth+1)*len(r.cols)))
	_, err := io.WriteString(r.w, b.String())
	return err
}

func (r *renderer) node(n *core.Node, depth int) error {
	if r.opt.MaxDepth > 0 && depth >= r.opt.MaxDepth {
		return nil
	}
	var b strings.Builder

	mark := " "
	if r.opt.Highlight[n] {
		mark = "*"
	}
	label := mark + strings.Repeat("  ", depth) + glyph(n) + n.Label()
	if n.NoSource && (n.Kind == core.KindFrame || n.Kind == core.KindProc || n.Kind == core.KindCallSite) {
		label += " [bin]"
	}
	fmt.Fprintf(&b, "%-*s", labelWidth, trunc(label, labelWidth))

	for _, c := range r.cols {
		v := r.opt.value(n, c.MetricID, c.Inclusive)
		fmt.Fprintf(&b, " %*s", cellWidth, r.cell(c.MetricID, v))
	}
	line := strings.TrimRight(b.String(), " ") + "\n"
	if _, err := io.WriteString(r.w, line); err != nil {
		return err
	}

	kids := append([]*core.Node(nil), n.Children...)
	if !r.opt.NoSort {
		core.SortScopes(kids, r.opt.Sort)
	}
	shown := kids
	if r.opt.TopN > 0 && len(kids) > r.opt.TopN {
		shown = kids[:r.opt.TopN]
	}
	for _, c := range shown {
		if err := r.node(c, depth+1); err != nil {
			return err
		}
	}
	if len(shown) < len(kids) {
		if r.opt.MaxDepth == 0 || depth+1 < r.opt.MaxDepth {
			elide := fmt.Sprintf(" %s... (%d more)", strings.Repeat("  ", depth+1), len(kids)-len(shown))
			if _, err := fmt.Fprintf(r.w, "%s\n", elide); err != nil {
				return err
			}
		}
	}
	return nil
}

// glyph prefixes dynamic rows with the call-site marker, echoing
// hpcviewer's "box with a right-facing arrow" icon (Section V-B).
func glyph(n *core.Node) string {
	switch n.Kind {
	case core.KindFrame:
		if n.CallLine > 0 {
			return "=> "
		}
		return ""
	case core.KindCallSite:
		return "=> "
	}
	return ""
}

// cell formats one metric value: blank when zero (Section V-A), otherwise
// scientific notation plus percent-of-total when a denominator exists.
func (r *renderer) cell(metricID int, v float64) string {
	if v == 0 {
		return ""
	}
	s := FormatValue(v)
	if r.opt.Totals != nil {
		d := r.reg.ByID(metricID)
		if d != nil && d.ShowPercent {
			if tot := r.opt.Totals(metricID); tot != 0 {
				s += fmt.Sprintf(" %5.1f%%", 100*v/tot)
			}
		}
	}
	return s
}

// FormatValue renders a metric value "with scientific notation with simple
// and intuitively readable format" (Section V-A).
func FormatValue(v float64) string {
	if v == 0 {
		return ""
	}
	a := math.Abs(v)
	if a >= 1e4 || a < 1e-2 {
		return fmt.Sprintf("%.2e", v)
	}
	if v == math.Trunc(v) {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	if n <= 3 {
		return s[:n]
	}
	return s[:n-3] + "..."
}
