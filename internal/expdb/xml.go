package expdb

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"

	"repro/internal/core"
	"repro/internal/intern"
)

// XML database format:
//
//	<Experiment n="prog" ranks="8">
//	  <MetricTable>
//	    <Metric n="CYCLES" u="cycles" kind="raw" period="1000"/>
//	    <Metric n="fpwaste" kind="derived" formula="$0*4 - $1"/>
//	    <Metric n="CYCLES (mean)" kind="summary" op="mean" src="0"/>
//	  </MetricTable>
//	  <CCT>
//	    <N k="frame" n="main" f="a.c" l="1" id="4194304" mod="x.exe">
//	      <V c="0" v="1000"/>          <!-- base value -->
//	      <SV c="2" v="42.5"/>         <!-- summary inclusive value -->
//	      <N .../>
//	    </N>
//	  </CCT>
//	</Experiment>

var kindAttr = map[core.Kind]string{
	core.KindFrame:    "frame",
	core.KindLoop:     "loop",
	core.KindAlien:    "alien",
	core.KindStmt:     "stmt",
	core.KindLM:       "lm",
	core.KindFile:     "file",
	core.KindProc:     "proc",
	core.KindCallSite: "callsite",
}

var attrKind = func() map[string]core.Kind {
	m := map[string]core.Kind{}
	for k, v := range kindAttr {
		m[v] = k
	}
	return m
}()

// WriteXML serializes the experiment.
func (e *Experiment) WriteXML(w io.Writer) error {
	enc := xml.NewEncoder(w)
	enc.Indent("", " ")
	root := xml.StartElement{Name: xml.Name{Local: "Experiment"}, Attr: []xml.Attr{
		{Name: xml.Name{Local: "n"}, Value: e.Program},
		{Name: xml.Name{Local: "ranks"}, Value: strconv.Itoa(e.NRanks)},
	}}
	if err := enc.EncodeToken(root); err != nil {
		return err
	}

	mt := xml.StartElement{Name: xml.Name{Local: "MetricTable"}}
	if err := enc.EncodeToken(mt); err != nil {
		return err
	}
	for _, d := range descsOf(e.Tree.Reg) {
		el := xml.StartElement{Name: xml.Name{Local: "Metric"}}
		add := func(k, v string) {
			if v != "" {
				el.Attr = append(el.Attr, xml.Attr{Name: xml.Name{Local: k}, Value: v})
			}
		}
		add("n", d.Name)
		add("u", d.Unit)
		add("kind", d.Kind)
		if d.Period > 0 {
			add("period", strconv.FormatUint(d.Period, 10))
		}
		add("formula", d.Formula)
		add("op", d.Op)
		if d.Kind == "summary" {
			add("src", strconv.Itoa(d.Source))
		}
		if err := enc.EncodeToken(el); err != nil {
			return err
		}
		if err := enc.EncodeToken(el.End()); err != nil {
			return err
		}
	}
	if err := enc.EncodeToken(mt.End()); err != nil {
		return err
	}

	cct := xml.StartElement{Name: xml.Name{Local: "CCT"}}
	if err := enc.EncodeToken(cct); err != nil {
		return err
	}
	inclOv, exclOv := overrideCols(e.Tree.Reg)
	// Root overrides live directly under CCT: the root has no N element.
	for _, cv := range overrideValues(&e.Tree.Root.Incl, inclOv) {
		if err := encodeValue(enc, "SV", cv.col, cv.val); err != nil {
			return err
		}
	}
	for _, cv := range overrideValues(&e.Tree.Root.Excl, exclOv) {
		if err := encodeValue(enc, "EV", cv.col, cv.val); err != nil {
			return err
		}
	}
	for _, c := range e.Tree.Root.Children {
		if err := encodeNode(enc, c, inclOv, exclOv); err != nil {
			return err
		}
	}
	if err := enc.EncodeToken(cct.End()); err != nil {
		return err
	}
	if err := enc.EncodeToken(root.End()); err != nil {
		return err
	}
	return enc.Flush()
}

func encodeNode(enc *xml.Encoder, n *core.Node, inclOv, exclOv map[int]bool) error {
	el := xml.StartElement{Name: xml.Name{Local: "N"}}
	add := func(k, v string) {
		if v != "" {
			el.Attr = append(el.Attr, xml.Attr{Name: xml.Name{Local: k}, Value: v})
		}
	}
	kn, ok := kindAttr[n.Kind]
	if !ok {
		return fmt.Errorf("expdb: cannot serialize node kind %v", n.Kind)
	}
	add("k", kn)
	add("n", n.Name.String())
	add("f", n.File.String())
	if n.Line != 0 {
		add("l", strconv.Itoa(n.Line))
	}
	if n.ID != 0 {
		add("id", strconv.FormatUint(n.ID, 10))
	}
	if n.CallLine != 0 {
		add("cl", strconv.Itoa(n.CallLine))
	}
	add("cf", n.CallFile.String())
	add("mod", n.Mod.String())
	if n.NoSource {
		add("ns", "1")
	}
	if err := enc.EncodeToken(el); err != nil {
		return err
	}

	var verr error
	n.Base.Range(func(id int, v float64) {
		if verr != nil {
			return
		}
		verr = encodeValue(enc, "V", id, v)
	})
	if verr != nil {
		return verr
	}
	for _, cv := range overrideValues(&n.Incl, inclOv) {
		if err := encodeValue(enc, "SV", cv.col, cv.val); err != nil {
			return err
		}
	}
	for _, cv := range overrideValues(&n.Excl, exclOv) {
		if err := encodeValue(enc, "EV", cv.col, cv.val); err != nil {
			return err
		}
	}
	for _, c := range n.Children {
		if err := encodeNode(enc, c, inclOv, exclOv); err != nil {
			return err
		}
	}
	return enc.EncodeToken(el.End())
}

func encodeValue(enc *xml.Encoder, elem string, col int, v float64) error {
	el := xml.StartElement{Name: xml.Name{Local: elem}, Attr: []xml.Attr{
		{Name: xml.Name{Local: "c"}, Value: strconv.Itoa(col)},
		{Name: xml.Name{Local: "v"}, Value: strconv.FormatFloat(v, 'g', -1, 64)},
	}}
	if err := enc.EncodeToken(el); err != nil {
		return err
	}
	return enc.EncodeToken(el.End())
}

// ReadXML deserializes an experiment and recomputes presented metrics.
func ReadXML(r io.Reader) (*Experiment, error) {
	dec := xml.NewDecoder(r)
	var (
		e         *Experiment
		descs     []metricDesc
		stack     []*core.Node
		inclOv    = map[*core.Node][]colVal{}
		exclOv    = map[*core.Node][]colVal{}
		inMetrics bool
		inCCT     bool
	)
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("expdb: %w", err)
		}
		switch tok := tok.(type) {
		case xml.StartElement:
			switch tok.Name.Local {
			case "Experiment":
				e = &Experiment{NRanks: 1}
				for _, a := range tok.Attr {
					switch a.Name.Local {
					case "n":
						e.Program = a.Value
					case "ranks":
						n, err := strconv.Atoi(a.Value)
						if err != nil {
							return nil, fmt.Errorf("expdb: bad ranks %q", a.Value)
						}
						e.NRanks = n
					}
				}
			case "MetricTable":
				inMetrics = true
			case "Metric":
				if !inMetrics {
					return nil, fmt.Errorf("expdb: Metric outside MetricTable")
				}
				var d metricDesc
				for _, a := range tok.Attr {
					switch a.Name.Local {
					case "n":
						d.Name = a.Value
					case "u":
						d.Unit = a.Value
					case "kind":
						d.Kind = a.Value
					case "period":
						p, err := strconv.ParseUint(a.Value, 10, 64)
						if err != nil {
							return nil, fmt.Errorf("expdb: bad period %q", a.Value)
						}
						d.Period = p
					case "formula":
						d.Formula = a.Value
					case "op":
						d.Op = a.Value
					case "src":
						s, err := strconv.Atoi(a.Value)
						if err != nil {
							return nil, fmt.Errorf("expdb: bad src %q", a.Value)
						}
						d.Source = s
					}
				}
				descs = append(descs, d)
			case "CCT":
				if e == nil {
					return nil, fmt.Errorf("expdb: CCT before Experiment")
				}
				reg, err := rebuildRegistry(descs)
				if err != nil {
					return nil, err
				}
				e.Tree = core.NewTree(e.Program, reg)
				stack = []*core.Node{e.Tree.Root}
				inCCT = true
			case "N":
				if !inCCT || len(stack) == 0 {
					return nil, fmt.Errorf("expdb: N outside CCT")
				}
				n, err := decodeNodeStart(tok, stack[len(stack)-1])
				if err != nil {
					return nil, err
				}
				stack = append(stack, n)
			case "V", "SV", "EV":
				if !inCCT || len(stack) == 0 {
					return nil, fmt.Errorf("expdb: value outside node")
				}
				n := stack[len(stack)-1]
				col, v, err := decodeValue(tok)
				if err != nil {
					return nil, err
				}
				switch tok.Name.Local {
				case "V":
					n.Base.Add(col, v)
				case "SV":
					inclOv[n] = append(inclOv[n], colVal{col: col, val: v})
				case "EV":
					exclOv[n] = append(exclOv[n], colVal{col: col, val: v})
				}
			}
		case xml.EndElement:
			switch tok.Name.Local {
			case "MetricTable":
				inMetrics = false
			case "CCT":
				inCCT = false
			case "N":
				if len(stack) > 1 {
					stack = stack[:len(stack)-1]
				}
			}
		}
	}
	if e == nil || e.Tree == nil {
		return nil, fmt.Errorf("expdb: not an experiment database")
	}
	if err := e.finalize(inclOv, exclOv); err != nil {
		return nil, err
	}
	return e, nil
}

func decodeNodeStart(tok xml.StartElement, parent *core.Node) (*core.Node, error) {
	var key core.Key
	var noSource bool
	var callLine int
	var callFile, mod intern.Sym
	for _, a := range tok.Attr {
		switch a.Name.Local {
		case "k":
			k, ok := attrKind[a.Value]
			if !ok {
				return nil, fmt.Errorf("expdb: unknown node kind %q", a.Value)
			}
			key.Kind = k
		case "n":
			key.Name = intern.S(a.Value)
		case "f":
			key.File = intern.S(a.Value)
		case "l":
			n, err := strconv.Atoi(a.Value)
			if err != nil {
				return nil, fmt.Errorf("expdb: bad line %q", a.Value)
			}
			key.Line = n
		case "id":
			id, err := strconv.ParseUint(a.Value, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("expdb: bad id %q", a.Value)
			}
			key.ID = id
		case "cl":
			n, err := strconv.Atoi(a.Value)
			if err != nil {
				return nil, fmt.Errorf("expdb: bad call line %q", a.Value)
			}
			callLine = n
		case "cf":
			callFile = intern.S(a.Value)
		case "mod":
			mod = intern.S(a.Value)
		case "ns":
			noSource = a.Value == "1"
		}
	}
	if key.Kind == core.KindRoot {
		return nil, fmt.Errorf("expdb: node without kind")
	}
	n := parent.Child(key, true)
	n.NoSource = noSource
	n.CallLine = callLine
	n.CallFile = callFile
	n.Mod = mod
	return n, nil
}

func decodeValue(tok xml.StartElement) (int, float64, error) {
	col := -1
	var v float64
	var haveV bool
	for _, a := range tok.Attr {
		switch a.Name.Local {
		case "c":
			c, err := strconv.Atoi(a.Value)
			if err != nil {
				return 0, 0, fmt.Errorf("expdb: bad column %q", a.Value)
			}
			col = c
		case "v":
			f, err := strconv.ParseFloat(a.Value, 64)
			if err != nil {
				return 0, 0, fmt.Errorf("expdb: bad value %q", a.Value)
			}
			v = f
			haveV = true
		}
	}
	if col < 0 || !haveV {
		return 0, 0, fmt.Errorf("expdb: incomplete value element")
	}
	return col, v, nil
}
