package expdb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/framing"
	"repro/internal/ingest"
)

// corruptSection flips one payload byte of the section with the given id,
// locating it by walking the frame structure. Fails the test if the
// section is absent.
func corruptSection(t *testing.T, data []byte, id byte) []byte {
	t.Helper()
	out := append([]byte(nil), data...)
	off := len(dbMagicV2)
	for off < len(out) {
		secID := out[off]
		if secID == framing.EndMarker {
			break
		}
		n, vlen := binary.Uvarint(out[off+1:])
		if vlen <= 0 {
			t.Fatalf("bad frame at offset %d", off)
		}
		payloadStart := off + 1 + vlen
		if secID == id {
			if n == 0 {
				t.Fatalf("section %d has empty payload", id)
			}
			out[payloadStart+int(n)/2] ^= 0xff
			return out
		}
		off = payloadStart + int(n) + 4
	}
	t.Fatalf("section %d not found", id)
	return nil
}

func TestBinaryV1CompatRoundTrip(t *testing.T) {
	e := fixture(t)
	var buf bytes.Buffer
	if err := e.WriteBinaryV1(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte(dbMagic)) {
		t.Fatalf("WriteBinaryV1 magic = %q", buf.Bytes()[:5])
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	equalExperiments(t, e, got)
}

func TestBinaryV2Magic(t *testing.T) {
	e := fixture(t)
	var buf bytes.Buffer
	if err := e.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte(dbMagicV2)) {
		t.Fatalf("WriteBinary magic = %q", buf.Bytes()[:5])
	}
}

func TestProvenanceRoundTrip(t *testing.T) {
	e := fixture(t)
	e.Provenance = &ingest.Report{Attempted: 1024, Merged: 1021, Bad: []ingest.BadRank{
		{Path: "run/r0007.cpprof", Rank: 7, Offset: 123, Class: ingest.ClassCorrupt, Message: "bad magic"},
		{Path: "run/r0100.cpprof", Rank: -1, Offset: -1, Class: ingest.ClassUnreadable, Message: "permission denied"},
		{Path: "run/r0512.cpprof", Rank: 512, Offset: 4096, Class: ingest.ClassTruncated, Message: "unexpected EOF"},
	}}
	var buf bytes.Buffer
	if err := e.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Provenance == nil {
		t.Fatal("provenance lost")
	}
	p := got.Provenance
	if p.Attempted != 1024 || p.Merged != 1021 || len(p.Bad) != 3 {
		t.Fatalf("provenance = %+v", p)
	}
	for i, want := range e.Provenance.Bad {
		if p.Bad[i] != want {
			t.Fatalf("bad[%d] = %+v, want %+v", i, p.Bad[i], want)
		}
	}
	if want := "merged 1021/1024 ranks (3 quarantined: 1 corrupt, 1 truncated, 1 unreadable)"; p.Summary() != want {
		t.Fatalf("summary = %q, want %q", p.Summary(), want)
	}
}

func TestDamagedOverridesSectionDegrades(t *testing.T) {
	// fixture has summary columns, so an overrides section exists.
	e := fixture(t)
	var buf bytes.Buffer
	if err := e.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := corruptSection(t, buf.Bytes(), dbSecOverrides)
	got, err := ReadBinary(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("damaged optional section should degrade, got error: %v", err)
	}
	if len(got.Notes) == 0 || !strings.Contains(got.Notes[0], "overrides") {
		t.Fatalf("degradation not recorded: notes = %v", got.Notes)
	}
	// The tree itself is intact — raw columns survive untouched.
	if got.Program != e.Program || got.NRanks != e.NRanks {
		t.Fatal("identity lost in degraded open")
	}
}

func TestDamagedProvenanceSectionDegrades(t *testing.T) {
	e := fixture(t)
	e.Provenance = &ingest.Report{Attempted: 4, Merged: 3, Bad: []ingest.BadRank{
		{Path: "x.cpprof", Rank: 1, Offset: 5, Class: ingest.ClassCorrupt, Message: "boom"},
	}}
	var buf bytes.Buffer
	if err := e.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := corruptSection(t, buf.Bytes(), dbSecProvenance)
	got, err := ReadBinary(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("damaged provenance should degrade, got error: %v", err)
	}
	if got.Provenance != nil {
		t.Fatal("damaged provenance should be dropped")
	}
	if len(got.Notes) == 0 || !strings.Contains(got.Notes[0], "provenance") {
		t.Fatalf("degradation not recorded: notes = %v", got.Notes)
	}
}

func TestDamagedRequiredSectionsAreFatal(t *testing.T) {
	e := fixture(t)
	var buf bytes.Buffer
	if err := e.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		id   byte
		name string
	}{
		{dbSecStrings, "strings"},
		{dbSecHeader, "header"},
		{dbSecMetrics, "metrics"},
		{dbSecTree, "tree"},
	} {
		data := corruptSection(t, buf.Bytes(), tc.id)
		_, err := ReadBinary(bytes.NewReader(data))
		if err == nil {
			t.Fatalf("damaged %s section accepted", tc.name)
		}
		var se *SectionError
		if !errors.As(err, &se) {
			t.Fatalf("damaged %s section: error %T is not a SectionError: %v", tc.name, err, err)
		}
		if se.Section != tc.name {
			t.Fatalf("damaged %s section attributed to %q", tc.name, se.Section)
		}
	}
}

func TestV2TruncationAlwaysErrors(t *testing.T) {
	e := New(core.Fig1Tree())
	var buf bytes.Buffer
	if err := e.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for n := 0; n < len(data); n++ {
		if _, err := ReadBinary(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", n, len(data))
		}
	}
}

func TestReadSniffsAllFormats(t *testing.T) {
	e := fixture(t)
	var v1, v2, xml bytes.Buffer
	if err := e.WriteBinaryV1(&v1); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteBinary(&v2); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteXML(&xml); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{"v1": v1.Bytes(), "v2": v2.Bytes(), "xml": xml.Bytes()} {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("Read(%s): %v", name, err)
		}
		equalExperiments(t, e, got)
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}
