package expdb

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a file crash-safely: the payload goes to a
// temporary file in the target's directory, is fsynced, and only then
// renamed over path (followed by a directory fsync so the rename itself is
// durable). A reader — including a catalog spool watcher racing the writer,
// or a crash at any instant — can therefore observe either the old file or
// the complete new one, never a torn database. On any error the temporary
// file is removed and the target is left untouched.
//
// Every database writer in this repo (hpcprof -o, hpcdiff -o, catalog
// ingest) goes through this helper: a half-written CPDB must never be
// visible under a name something else might open.
func WriteFileAtomic(path string, write func(f *os.File) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Make the rename durable. Directory fsync is advisory on some
	// filesystems; a failure here does not un-publish the file.
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}
