package expdb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/framing"
	"repro/internal/ingest"
	"repro/internal/metric"
)

// v2Bytes encodes an experiment in the v2 framed format.
func v2Bytes(t *testing.T, e *Experiment) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := e.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// firstSummaryCol returns the ID of the first summary column.
func firstSummaryCol(t *testing.T, e *Experiment) int {
	t.Helper()
	for _, d := range e.Tree.Reg.Columns() {
		if d.Kind == metric.Summary {
			return d.ID
		}
	}
	t.Fatal("fixture has no summary column")
	return -1
}

// maxAbsIncl returns the largest magnitude of column id over every scope's
// inclusive vector.
func maxAbsIncl(e *Experiment, id int) float64 {
	var m float64
	core.Walk(e.Tree.Root, func(n *core.Node) bool {
		if v := n.Incl.Get(id); v > m || -v > m {
			if v < 0 {
				v = -v
			}
			m = v
		}
		return true
	})
	return m
}

// TestLazyOpenSkipsUntouchedSections is the section-access counter test: a
// lazy open decodes exactly the four required sections, raw and raw-derived
// column accesses fault nothing in, and the overrides/provenance sections
// are decoded once each on first demand.
func TestLazyOpenSkipsUntouchedSections(t *testing.T) {
	e := fixture(t)
	e.Provenance = &ingest.Report{Attempted: 3, Merged: 3}
	data := v2Bytes(t, e)

	db, err := OpenLazy(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !db.Lazy() {
		t.Fatal("v2 open is not lazy")
	}
	reads := db.SectionReads()
	for _, s := range []string{"strings", "header", "metrics", "tree"} {
		if reads[s] != 1 {
			t.Fatalf("required section %s decoded %d times at open, want 1", s, reads[s])
		}
	}
	if reads["overrides"] != 0 || reads["provenance"] != 0 {
		t.Fatalf("optional sections decoded eagerly: %v", reads)
	}

	// Raw columns and derived formulas over raw columns are resident
	// without faulting anything.
	reg := db.Experiment().Tree.Reg
	if err := db.NeedColumn(reg.ByName("CYCLES").ID); err != nil {
		t.Fatal(err)
	}
	if err := db.NeedColumn(reg.ByName("fpwaste").ID); err != nil {
		t.Fatal(err)
	}
	if n := db.SectionReads()["overrides"]; n != 0 {
		t.Fatalf("raw/derived access decoded overrides %d times, want 0", n)
	}

	// A summary column faults the overrides section in — once, no matter
	// how many columns demand it.
	sum := firstSummaryCol(t, db.Experiment())
	if err := db.NeedColumn(sum); err != nil {
		t.Fatal(err)
	}
	if err := db.NeedColumn(sum); err != nil {
		t.Fatal(err)
	}
	if n := db.SectionReads()["overrides"]; n != 1 {
		t.Fatalf("overrides decoded %d times, want 1", n)
	}
	if m := maxAbsIncl(db.Experiment(), sum); m == 0 {
		t.Fatal("summary column still zero after faulting overrides in")
	}

	if n := db.SectionReads()["provenance"]; n != 0 {
		t.Fatalf("provenance decoded before being asked for: %d", n)
	}
	rep, err := db.Provenance()
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Attempted != 3 {
		t.Fatalf("provenance report = %+v", rep)
	}
	if _, err := db.Provenance(); err != nil {
		t.Fatal(err)
	}
	if n := db.SectionReads()["provenance"]; n != 1 {
		t.Fatalf("provenance decoded %d times, want 1", n)
	}
}

// TestLazyMaterializeMatchesEager checks that a lazy open plus
// MaterializeAll lands on exactly the state the eager reader builds, and
// that override-backed columns read zero until faulted.
func TestLazyMaterializeMatchesEager(t *testing.T) {
	e := fixture(t)
	e.Provenance = &ingest.Report{Attempted: 4, Merged: 3,
		Bad: []ingest.BadRank{{Path: "rank3", Rank: 3, Class: ingest.ClassTruncated}}}
	data := v2Bytes(t, e)

	eager, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	sum := firstSummaryCol(t, eager)
	if maxAbsIncl(eager, sum) == 0 {
		t.Fatal("eager summary column is zero; fixture too weak")
	}

	db, err := OpenLazy(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if m := maxAbsIncl(db.Experiment(), sum); m != 0 {
		t.Fatalf("summary column nonzero (%g) before faulting", m)
	}
	if db.Experiment().Provenance != nil {
		t.Fatal("provenance decoded before faulting")
	}
	if err := db.MaterializeAll(); err != nil {
		t.Fatal(err)
	}
	equalExperiments(t, eager, db.Experiment())
	rep := db.Experiment().Provenance
	if rep == nil || rep.Attempted != 4 || len(rep.Bad) != 1 {
		t.Fatalf("provenance report = %+v", rep)
	}
}

// TestLazyDamagedOverridesDegradeOnAccess flips a bit inside the overrides
// payload: the lazy open succeeds silently, and the first access to an
// override-backed column degrades with exactly the note the eager open
// reports — not an error, never a panic.
func TestLazyDamagedOverridesDegradeOnAccess(t *testing.T) {
	e := fixture(t)
	data := v2Bytes(t, e)

	// Locate the overrides payload in the stream and corrupt one byte.
	fr, err := framing.NewReader(bytes.NewReader(data), int64(len(data)), dbMagicV2)
	if err != nil {
		t.Fatal(err)
	}
	var ovPayload []byte
	for {
		id, payload, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if id == dbSecOverrides {
			ovPayload = payload
		}
	}
	if len(ovPayload) == 0 {
		t.Fatal("fixture wrote no overrides section")
	}
	at := bytes.LastIndex(data, ovPayload)
	if at < 0 {
		t.Fatal("overrides payload not found in stream")
	}
	data[at+len(ovPayload)/2] ^= 0x40

	eager, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	const note = "overrides section failed its checksum; summary and computed columns were dropped"
	if len(eager.Notes) != 1 || eager.Notes[0] != note {
		t.Fatalf("eager notes = %q", eager.Notes)
	}

	db, err := OpenLazy(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Experiment().Notes) != 0 {
		t.Fatalf("degradation noted before access: %q", db.Experiment().Notes)
	}
	sum := firstSummaryCol(t, db.Experiment())
	if err := db.NeedColumn(sum); err != nil {
		t.Fatalf("checksum damage must degrade, not error: %v", err)
	}
	if got := db.Experiment().Notes; len(got) != 1 || got[0] != note {
		t.Fatalf("lazy notes = %q, want %q", got, note)
	}
	if m := maxAbsIncl(db.Experiment(), sum); m != 0 {
		t.Fatalf("dropped summary column reads %g, want 0", m)
	}
	equalExperiments(t, eager, db.Experiment())
}

// TestLazyMalformedOverridesTypedError rebuilds the stream with an
// overrides payload that passes its checksum but is garbage: the open still
// succeeds, and the first access reports the same typed *SectionError the
// eager reader does.
func TestLazyMalformedOverridesTypedError(t *testing.T) {
	e := fixture(t)
	data := v2Bytes(t, e)

	var out bytes.Buffer
	fw, err := framing.NewWriter(&out, dbMagicV2)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := framing.NewReader(bytes.NewReader(data), int64(len(data)), dbMagicV2)
	if err != nil {
		t.Fatal(err)
	}
	for {
		id, payload, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if id == dbSecOverrides {
			// An absurd entry count: well-framed, correctly checksummed,
			// semantically malformed.
			payload = binary.AppendUvarint(nil, 1<<40)
		}
		if err := fw.Section(id, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}

	var eagerErr *SectionError
	if _, err := Read(bytes.NewReader(out.Bytes())); !errors.As(err, &eagerErr) {
		t.Fatalf("eager read of malformed overrides: %v", err)
	}

	db, err := OpenLazy(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sum := firstSummaryCol(t, db.Experiment())
	err = db.NeedColumn(sum)
	var se *SectionError
	if !errors.As(err, &se) || se.Section != "overrides" {
		t.Fatalf("fault-in error = %v, want *SectionError for overrides", err)
	}
	if eagerErr.Section != se.Section {
		t.Fatalf("eager error %v vs lazy error %v", eagerErr, se)
	}
	// The error is sticky: later accesses repeat it rather than pretending
	// the section loaded.
	if err2 := db.NeedColumn(sum); !errors.As(err2, &se) {
		t.Fatalf("second access lost the error: %v", err2)
	}
}

// TestLazyOpenEagerFallback opens v1 and XML databases through OpenLazy:
// both formats decode eagerly (no framing to exploit) and every accessor is
// already satisfied.
func TestLazyOpenEagerFallback(t *testing.T) {
	e := fixture(t)
	for _, tc := range []struct {
		name  string
		write func(*Experiment, *bytes.Buffer) error
	}{
		{"v1", func(e *Experiment, b *bytes.Buffer) error { return e.WriteBinaryV1(b) }},
		{"xml", func(e *Experiment, b *bytes.Buffer) error { return e.WriteXML(b) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := tc.write(e, &buf); err != nil {
				t.Fatal(err)
			}
			data := buf.Bytes()
			eager, err := Read(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			db, err := OpenLazy(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			if db.Lazy() {
				t.Fatalf("%s open claims to be lazy", tc.name)
			}
			if len(db.SectionReads()) != 0 {
				t.Fatalf("eager fallback counted section reads: %v", db.SectionReads())
			}
			sum := firstSummaryCol(t, db.Experiment())
			if err := db.NeedColumn(sum); err != nil {
				t.Fatal(err)
			}
			if err := db.MaterializeAll(); err != nil {
				t.Fatal(err)
			}
			equalExperiments(t, eager, db.Experiment())
			if m := maxAbsIncl(db.Experiment(), sum); m == 0 {
				t.Fatal("summary column empty after eager fallback")
			}
		})
	}
}

// TestLazyOpenErrors mirrors the eager open's fatal cases: truncation and a
// damaged required section fail at OpenLazy, not at first access.
func TestLazyOpenErrors(t *testing.T) {
	e := fixture(t)
	data := v2Bytes(t, e)

	if _, err := OpenLazy(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("truncated stream opened")
	}
	if _, err := OpenLazy(strings.NewReader("")); err == nil {
		t.Fatal("empty stream opened")
	}

	// Damage the tree section: required, so the open itself fails with the
	// same typed error the eager reader returns.
	fr, err := framing.NewReader(bytes.NewReader(data), int64(len(data)), dbMagicV2)
	if err != nil {
		t.Fatal(err)
	}
	var treePayload []byte
	for {
		id, payload, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if id == dbSecTree {
			treePayload = payload
		}
	}
	at := bytes.LastIndex(data, treePayload)
	if at < 0 {
		t.Fatal("tree payload not found")
	}
	data[at+len(treePayload)/2] ^= 0x01
	var se *SectionError
	if _, err := OpenLazy(bytes.NewReader(data)); !errors.As(err, &se) || se.Section != "tree" {
		t.Fatalf("damaged tree section: %v", err)
	}
}
