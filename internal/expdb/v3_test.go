package expdb

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/metric"
)

func v3Bytes(t *testing.T, e *Experiment) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := e.WriteBinaryV3(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func v3File(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "experiment.db")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// v3CorruptSection flips one payload byte of the first v3 section matching
// the predicate, returning a copy.
func v3CorruptSection(t *testing.T, data []byte, match func(v3sec) bool) []byte {
	t.Helper()
	secs, err := parseV3Index(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range secs {
		if !match(s) {
			continue
		}
		if s.length == 0 {
			t.Fatal("matched section has empty payload")
		}
		out := append([]byte(nil), data...)
		out[s.off+s.length/2] ^= 0xff
		return out
	}
	t.Fatal("no section matched")
	return nil
}

func TestBinaryV3RoundTrip(t *testing.T) {
	e := fixture(t)
	e.Provenance = &ingest.Report{Attempted: 3, Merged: 3}
	data := v3Bytes(t, e)
	if !bytes.HasPrefix(data, []byte(dbMagicV3Full)) {
		t.Fatalf("WriteBinaryV3 magic = %q", data[:8])
	}

	// Read sniffs the magic like any other format.
	got, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	equalExperiments(t, e, got)

	// And so does OpenLazy (eager fallback for streams).
	db, err := OpenLazy(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	equalExperiments(t, e, db.Experiment())
}

// TestV3RewriteToV2Identical locks the v3 columns to bitwise fidelity: a
// database round-tripped through v3 re-serializes to the identical v2
// bytes, so nothing — values, registry, tree shape, provenance — was
// perturbed by baking planes into slabs.
func TestV3RewriteToV2Identical(t *testing.T) {
	e := fixture(t)
	e.Provenance = &ingest.Report{Attempted: 3, Merged: 3}
	want := v2Bytes(t, e)

	got, err := ReadBinary(bytes.NewReader(v3Bytes(t, e)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := got.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Fatalf("v2 bytes differ after a v3 round trip (%d vs %d bytes)", len(want), buf.Len())
	}
}

func TestOpenMappedIsIndexOnly(t *testing.T) {
	e := fixture(t)
	e.Provenance = &ingest.Report{Attempted: 3, Merged: 3}
	db, err := OpenMapped(v3File(t, v3Bytes(t, e)))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	reads := db.SectionReads()
	if reads["index"] != 1 {
		t.Fatalf("index decoded %d times at open, want 1", reads["index"])
	}
	for _, s := range []string{"strings", "header", "metrics", "tree", "column", "provenance"} {
		if reads[s] != 0 {
			t.Fatalf("section %s touched at open: %v", s, reads)
		}
	}

	exp, err := db.Experiment()
	if err != nil {
		t.Fatal(err)
	}
	reads = db.SectionReads()
	for _, s := range []string{"strings", "header", "metrics", "tree"} {
		if reads[s] != 1 {
			t.Fatalf("metadata section %s decoded %d times, want 1", s, reads[s])
		}
	}
	if reads["column"] != 0 {
		t.Fatalf("columns checksummed before first touch: %v", reads)
	}
	if reads["provenance"] != 0 {
		t.Fatalf("provenance decoded before being asked for: %v", reads)
	}

	// First touch verifies only that column's sections; a second touch is
	// memoized.
	cyc := exp.Tree.Reg.ByName("CYCLES").ID
	if err := db.NeedColumn(cyc); err != nil {
		t.Fatal(err)
	}
	after := db.SectionReads()["column"]
	if want := len(db.colSecs[cyc]); after != want {
		t.Fatalf("NeedColumn checksummed %d sections, want %d", after, want)
	}
	if err := db.NeedColumn(cyc); err != nil {
		t.Fatal(err)
	}
	if again := db.SectionReads()["column"]; again != after {
		t.Fatalf("repeat NeedColumn re-checksummed: %d -> %d", after, again)
	}

	rep, err := db.Provenance()
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Attempted != 3 {
		t.Fatalf("provenance report = %+v", rep)
	}
	if db.SectionReads()["provenance"] != 1 {
		t.Fatalf("provenance decoded %d times, want 1", db.SectionReads()["provenance"])
	}
}

func TestMappedMatchesEager(t *testing.T) {
	e := fixture(t)
	db, err := OpenMapped(v3File(t, v3Bytes(t, e)))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	exp, err := db.Experiment()
	if err != nil {
		t.Fatal(err)
	}
	equalExperiments(t, e, exp)
	if len(exp.Notes) != 0 {
		t.Fatalf("clean database produced notes: %v", exp.Notes)
	}
}

// TestMappedCopyOnWriteLeavesFileUntouched drives a write through a
// borrowed (mapped) column and checks the slab was copied first: the file
// bytes never change and the store stops borrowing that column.
func TestMappedCopyOnWriteLeavesFileUntouched(t *testing.T) {
	e := fixture(t)
	data := v3Bytes(t, e)
	path := v3File(t, data)
	db, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	exp, err := db.Experiment()
	if err != nil {
		t.Fatal(err)
	}

	st := exp.Tree.MetricStore()
	cyc := exp.Tree.Reg.ByName("CYCLES").ID
	if !st.Borrowed(metric.PlaneIncl, cyc) {
		t.Fatal("inclusive CYCLES not adopted as a borrowed slab")
	}
	// Col hands out a writable slab: that must be the COW choke point.
	slab := st.Col(metric.PlaneIncl, cyc)
	if st.Borrowed(metric.PlaneIncl, cyc) {
		t.Fatal("writable slab still borrowed (writes would hit the mapping)")
	}
	for i := range slab {
		slab[i] = -1
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, after) {
		t.Fatal("mapped file bytes changed after a store write")
	}
	if got := db.data[0]; got != dbMagicV3Full[0] {
		t.Fatal("mapping itself was scribbled on")
	}
}

func TestMappedDamagedColumnDegrades(t *testing.T) {
	e := fixture(t)
	exp0 := e // keep names handy
	cyc := exp0.Tree.Reg.ByName("CYCLES").ID
	data := v3CorruptSection(t, v3Bytes(t, e), func(s v3sec) bool {
		return s.kind == dbSecColumn && int(s.col) == cyc && metric.Plane(s.plane) == metric.PlaneIncl
	})

	db, err := OpenMapped(v3File(t, data))
	if err != nil {
		t.Fatalf("open should survive column damage: %v", err)
	}
	defer db.Close()
	exp, err := db.Experiment()
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Notes) != 0 {
		t.Fatalf("notes before first touch: %v", exp.Notes)
	}
	if err := db.NeedColumn(cyc); err != nil {
		t.Fatalf("column damage must degrade, not error: %v", err)
	}
	if len(exp.Notes) != 1 || !strings.Contains(exp.Notes[0], "CRC32C") {
		t.Fatalf("notes = %v", exp.Notes)
	}
	// The damaged plane reads zero; the untouched planes survive.
	if m := maxAbsIncl(exp, cyc); m != 0 {
		t.Fatalf("damaged inclusive plane still reads %g", m)
	}
	baseMax := 0.0
	core.Walk(exp.Tree.Root, func(n *core.Node) bool {
		if v := n.Base.Get(cyc); v > baseMax {
			baseMax = v
		}
		return true
	})
	if baseMax == 0 {
		t.Fatal("undamaged base plane lost")
	}
	// Degradation is sticky, not repeated.
	if err := db.NeedColumn(cyc); err != nil {
		t.Fatal(err)
	}
	if len(exp.Notes) != 1 {
		t.Fatalf("repeat touch duplicated the note: %v", exp.Notes)
	}
}

func TestV3DamagedMetadataFatal(t *testing.T) {
	e := fixture(t)
	clean := v3Bytes(t, e)
	for _, kind := range []byte{dbSecStrings, dbSecHeader, dbSecMetrics, dbSecTree} {
		data := v3CorruptSection(t, clean, func(s v3sec) bool { return s.kind == kind })
		db, err := newMappedDB(data)
		if err != nil {
			t.Fatalf("open itself should stay O(index): %v", err)
		}
		if _, err := db.Experiment(); err == nil {
			t.Fatalf("corrupt %s section did not fail the metadata decode", sectionName(kind))
		} else {
			var serr *SectionError
			if !errors.As(err, &serr) {
				t.Fatalf("corrupt %s: error %v is not a SectionError", sectionName(kind), err)
			}
		}
		// Eager readers reject the database outright.
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Fatalf("eager read accepted corrupt %s section", sectionName(kind))
		}
	}
}

func TestV3DamagedProvenanceDegrades(t *testing.T) {
	e := fixture(t)
	e.Provenance = &ingest.Report{Attempted: 3, Merged: 2, Bad: []ingest.BadRank{{Path: "rank2.cpprof", Rank: 2, Offset: -1}}}
	data := v3CorruptSection(t, v3Bytes(t, e), func(s v3sec) bool { return s.kind == dbSecProvenance })
	db, err := newMappedDB(data)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := db.Provenance()
	if err != nil {
		t.Fatalf("provenance damage must degrade: %v", err)
	}
	if rep != nil {
		t.Fatalf("damaged provenance still decoded: %+v", rep)
	}
	exp, _ := db.Experiment()
	if len(exp.Notes) != 1 || !strings.Contains(exp.Notes[0], "provenance") {
		t.Fatalf("notes = %v", exp.Notes)
	}
}

// TestV3IndexAndTrailerCorruption flips every byte of the index and
// trailer in turn: each must fail the open (the O(index) trust boundary).
func TestV3IndexAndTrailerCorruption(t *testing.T) {
	e := fixture(t)
	data := v3Bytes(t, e)
	secs, err := parseV3Index(data)
	if err != nil {
		t.Fatal(err)
	}
	last := secs[len(secs)-1]
	indexOff := last.off + alignUpTest(last.length)
	for off := indexOff; off < int64(len(data)); off++ {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0xff
		if _, err := newMappedDB(bad); err == nil {
			t.Fatalf("flipping index/trailer byte %d went undetected", off)
		}
	}
}

func alignUpTest(n int64) int64 { return (n + 7) &^ 7 }

func TestV3TruncationAlwaysErrors(t *testing.T) {
	e := fixture(t)
	data := v3Bytes(t, e)
	for cut := 0; cut < len(data); cut++ {
		if _, err := newMappedDB(data[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected at open", cut)
		}
	}
}

func TestOpenMappedMissingFile(t *testing.T) {
	if _, err := OpenMapped(filepath.Join(t.TempDir(), "nope.db")); err == nil {
		t.Fatal("open of a missing file succeeded")
	}
}
