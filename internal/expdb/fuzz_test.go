package expdb

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/lower"
	"repro/internal/merge"
	"repro/internal/metric"
	"repro/internal/mpi"
	"repro/internal/prog"
	"repro/internal/sampler"
	"repro/internal/sim"
	"repro/internal/structfile"
)

// mergedSeed builds a genuine multi-rank merged experiment — rank-skewed
// costs, scopes absent from some ranks, mean/min/max/stddev summary
// columns — so round-trip fuzzing covers the summary-statistics override
// encoding, not just raw columns.
func mergedSeed(f *testing.F) *Experiment {
	f.Helper()
	p := prog.NewBuilder("fuzzmr").
		File("a.c").
		Proc("work", 10,
			prog.Lx(11, prog.ScaledInt{X: prog.RankInt{}, Num: 20, Den: 1, Off: 20},
				prog.W(12, 10))).
		Proc("main", 1,
			prog.C(2, "work"),
			prog.Sync(3)).
		Entry("main").MustBuild()
	im, err := lower.Lower(p, lower.Options{})
	if err != nil {
		f.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		f.Fatal(err)
	}
	profs, err := mpi.Run(im, mpi.Config{NRanks: 4, Events: []sampler.EventConfig{
		{Event: sim.EvCycles, Period: 10},
		{Event: sim.EvIdle, Period: 10},
	}})
	if err != nil {
		f.Fatal(err)
	}
	res, err := merge.ProfilesJobs(doc, profs, 2)
	if err != nil {
		f.Fatal(err)
	}
	for _, d := range res.Tree.Reg.Columns() {
		if d.Kind != metric.Raw {
			continue
		}
		if err := res.AddSummaries(d.ID, metric.OpMean, metric.OpMin, metric.OpMax, metric.OpStdDev); err != nil {
			f.Fatal(err)
		}
	}
	return FromMerge(res)
}

// FuzzReadBinary guards the compact database reader against panics on
// arbitrary input; anything accepted must re-encode cleanly.
func FuzzReadBinary(f *testing.F) {
	e := New(core.Fig1Tree())
	var buf, bufV1 bytes.Buffer
	if err := e.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	if err := e.WriteBinaryV1(&bufV1); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(bufV1.Bytes())
	f.Add([]byte("CPDB1"))
	f.Add([]byte("CPDB2"))
	f.Add([]byte{})
	mutated := append([]byte(nil), good...)
	if len(mutated) > 20 {
		mutated[15] ^= 0x7f
		f.Add(mutated)
		f.Add(good[:len(good)*2/3])
	}
	// Multi-rank merged seed in both versions: summary-statistics columns
	// exercise the override records the Fig1 tree never produces, and a
	// provenance section exercises the quarantine decoding.
	ms := mergedSeed(f)
	ms.Provenance = &ingest.Report{Attempted: 4, Merged: 3, Bad: []ingest.BadRank{
		{Path: "r3.cpprof", Rank: 3, Offset: 17, Class: ingest.ClassTruncated, Message: "unexpected EOF"},
	}}
	var mbuf, mbufV1 bytes.Buffer
	if err := ms.WriteBinary(&mbuf); err != nil {
		f.Fatal(err)
	}
	if err := ms.WriteBinaryV1(&mbufV1); err != nil {
		f.Fatal(err)
	}
	merged := mbuf.Bytes()
	f.Add(merged)
	f.Add(mbufV1.Bytes())
	if len(merged) > 30 {
		f.Add(merged[:len(merged)/2])
		tweaked := append([]byte(nil), merged...)
		tweaked[len(tweaked)-7] ^= 0x55
		f.Add(tweaked)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.WriteBinary(&out); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}

// FuzzReadXML does the same for the XML reader.
func FuzzReadXML(f *testing.F) {
	e := New(core.Fig1Tree())
	var buf bytes.Buffer
	if err := e.WriteXML(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	var mbuf bytes.Buffer
	if err := mergedSeed(f).WriteXML(&mbuf); err != nil {
		f.Fatal(err)
	}
	f.Add(mbuf.String())
	f.Add(`<Experiment n="x"><MetricTable/><CCT/></Experiment>`)
	f.Add(`<Experiment`)
	f.Add(`<Experiment n="x"><CCT><N k="frame" n="a"><V c="0" v="1"/></N></CCT></Experiment>`)
	f.Fuzz(func(t *testing.T, src string) {
		got, err := ReadXML(bytes.NewReader([]byte(src)))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.WriteXML(&out); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}

// FuzzReadV3 guards the mappable v3 reader: the index parser must bound-
// check every offset before the slab views are built (a mapped reader that
// trusts a bad index faults the process, not just the test), and anything
// accepted must re-encode cleanly in both v3 and v2.
func FuzzReadV3(f *testing.F) {
	e := New(core.Fig1Tree())
	var buf bytes.Buffer
	if err := e.WriteBinaryV3(&buf); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add([]byte("CPDB3"))
	f.Add([]byte("CPDB3\x00\x00\x00"))
	f.Add([]byte{})
	if len(good) > 40 {
		f.Add(good[:len(good)*2/3]) // truncated mid-section
		f.Add(good[:len(good)-32])  // trailer sheared off
		idxFlip := append([]byte(nil), good...)
		idxFlip[len(idxFlip)-40] ^= 0x7f // inside the index
		f.Add(idxFlip)
		trFlip := append([]byte(nil), good...)
		trFlip[len(trFlip)-28] ^= 0x01 // count field of the trailer
		f.Add(trFlip)
	}
	ms := mergedSeed(f)
	ms.Provenance = &ingest.Report{Attempted: 4, Merged: 3, Bad: []ingest.BadRank{
		{Path: "r3.cpprof", Rank: 3, Offset: 17, Class: ingest.ClassTruncated, Message: "unexpected EOF"},
	}}
	var mbuf bytes.Buffer
	if err := ms.WriteBinaryV3(&mbuf); err != nil {
		f.Fatal(err)
	}
	merged := mbuf.Bytes()
	f.Add(merged)
	if len(merged) > 64 {
		f.Add(merged[:len(merged)/2])
		colFlip := append([]byte(nil), merged...)
		colFlip[len(colFlip)/2] ^= 0x55 // likely inside a column slab
		f.Add(colFlip)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.WriteBinaryV3(&out); err != nil {
			t.Fatalf("v3 re-encode failed: %v", err)
		}
		if err := got.WriteBinary(&out); err != nil {
			t.Fatalf("v2 re-encode failed: %v", err)
		}
	})
}
