package expdb

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

// FuzzReadBinary guards the compact database reader against panics on
// arbitrary input; anything accepted must re-encode cleanly.
func FuzzReadBinary(f *testing.F) {
	e := New(core.Fig1Tree())
	var buf bytes.Buffer
	if err := e.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add([]byte("CPDB1"))
	f.Add([]byte{})
	mutated := append([]byte(nil), good...)
	if len(mutated) > 20 {
		mutated[15] ^= 0x7f
		f.Add(mutated)
		f.Add(good[:len(good)*2/3])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.WriteBinary(&out); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}

// FuzzReadXML does the same for the XML reader.
func FuzzReadXML(f *testing.F) {
	e := New(core.Fig1Tree())
	var buf bytes.Buffer
	if err := e.WriteXML(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`<Experiment n="x"><MetricTable/><CCT/></Experiment>`)
	f.Add(`<Experiment`)
	f.Add(`<Experiment n="x"><CCT><N k="frame" n="a"><V c="0" v="1"/></N></CCT></Experiment>`)
	f.Fuzz(func(t *testing.T, src string) {
		got, err := ReadXML(bytes.NewReader([]byte(src)))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.WriteXML(&out); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}
