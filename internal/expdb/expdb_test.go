package expdb

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lower"
	"repro/internal/merge"
	"repro/internal/metric"
	"repro/internal/mpi"
	"repro/internal/prog"
	"repro/internal/sampler"
	"repro/internal/sim"
	"repro/internal/structfile"
)

// fixture builds an experiment with raw, derived and summary columns.
func fixture(t *testing.T) *Experiment {
	t.Helper()
	p := prog.NewBuilder("fix").
		File("a.c").
		Proc("kernel", 10,
			prog.L(11, 50, prog.Wc(12, prog.Cost{Cycles: 20, FLOPs: 10, L1Miss: 2, Instr: 20}))).
		Proc("main", 1,
			prog.C(2, "kernel"),
			prog.Sync(3)).
		Entry("main").MustBuild()
	im, err := lower.Lower(p, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	profs, err := mpi.Run(im, mpi.Config{NRanks: 3, Events: []sampler.EventConfig{
		{Event: sim.EvCycles, Period: 20},
		{Event: sim.EvFLOPs, Period: 20},
	}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := merge.Profiles(doc, profs)
	if err != nil {
		t.Fatal(err)
	}
	cyc := res.Tree.Reg.ByName("CYCLES").ID
	if err := res.AddSummaries(cyc, metric.OpMean, metric.OpMax); err != nil {
		t.Fatal(err)
	}
	if _, err := res.Tree.Reg.AddDerived("fpwaste", "$0*4 - $1"); err != nil {
		t.Fatal(err)
	}
	if err := res.Tree.ApplyDerivedTree(); err != nil {
		t.Fatal(err)
	}
	return FromMerge(res)
}

// equalExperiments compares two experiments structurally: registry, tree
// shape and all metric vectors.
func equalExperiments(t *testing.T, a, b *Experiment) {
	t.Helper()
	if a.Program != b.Program || a.NRanks != b.NRanks {
		t.Fatalf("identity changed: %q/%d vs %q/%d", a.Program, a.NRanks, b.Program, b.NRanks)
	}
	if a.Tree.Reg.Len() != b.Tree.Reg.Len() {
		t.Fatalf("column count changed: %d vs %d", a.Tree.Reg.Len(), b.Tree.Reg.Len())
	}
	for i, da := range a.Tree.Reg.Columns() {
		db := b.Tree.Reg.ByID(i)
		if da.Name != db.Name || da.Kind != db.Kind || da.Period != db.Period ||
			da.Formula != db.Formula || da.Op != db.Op {
			t.Fatalf("column %d changed: %+v vs %+v", i, da, db)
		}
	}
	var compare func(x, y *core.Node)
	compare = func(x, y *core.Node) {
		if x.Key != y.Key || x.NoSource != y.NoSource || x.Mod != y.Mod ||
			x.CallLine != y.CallLine || x.CallFile != y.CallFile {
			t.Fatalf("node identity changed: %+v vs %+v", x.Key, y.Key)
		}
		for _, pair := range []struct{ va, vb *metric.View }{
			{&x.Base, &y.Base}, {&x.Excl, &y.Excl}, {&x.Incl, &y.Incl},
		} {
			if pair.va.Len() != pair.vb.Len() {
				t.Fatalf("vector length changed at %s: %s vs %s", x.Label(), pair.va.String(), pair.vb.String())
			}
			pair.va.Range(func(id int, v float64) {
				if pair.vb.Get(id) != v {
					t.Fatalf("value changed at %s col %d: %g vs %g", x.Label(), id, v, pair.vb.Get(id))
				}
			})
		}
		if len(x.Children) != len(y.Children) {
			t.Fatalf("children changed at %s", x.Label())
		}
		for i := range x.Children {
			compare(x.Children[i], y.Children[i])
		}
	}
	compare(a.Tree.Root, b.Tree.Root)
}

func TestXMLRoundTrip(t *testing.T) {
	e := fixture(t)
	var buf bytes.Buffer
	if err := e.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadXML(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadXML: %v", err)
	}
	equalExperiments(t, e, got)
}

func TestBinaryRoundTrip(t *testing.T) {
	e := fixture(t)
	var buf bytes.Buffer
	if err := e.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	equalExperiments(t, e, got)
}

func TestBinarySmallerThanXML(t *testing.T) {
	e := fixture(t)
	var xmlBuf, binBuf bytes.Buffer
	if err := e.WriteXML(&xmlBuf); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteBinary(&binBuf); err != nil {
		t.Fatal(err)
	}
	if binBuf.Len() >= xmlBuf.Len() {
		t.Fatalf("binary (%d B) not smaller than XML (%d B)", binBuf.Len(), xmlBuf.Len())
	}
	t.Logf("xml=%dB binary=%dB ratio=%.2fx", xmlBuf.Len(), binBuf.Len(),
		float64(xmlBuf.Len())/float64(binBuf.Len()))
}

func TestFig1TreeRoundTrips(t *testing.T) {
	e := New(core.Fig1Tree())
	var buf bytes.Buffer
	if err := e.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	equalExperiments(t, e, got)
	// The reloaded tree still reproduces Figure 2a's numbers.
	g1 := got.Tree.FindPath("m", "f", "g")
	if g1 == nil || g1.Incl.Get(0) != 6 || g1.Excl.Get(0) != 1 {
		t.Fatal("reloaded tree lost Figure 2a semantics")
	}
}

func TestReadXMLErrors(t *testing.T) {
	cases := []string{
		``,
		`<Wrong/>`,
		`<Experiment n="x"><CCT><N/></CCT></Experiment>`,                        // node without kind
		`<Experiment n="x"><CCT><N k="bogus"/></CCT></Experiment>`,              // bad kind
		`<Experiment n="x" ranks="zz"></Experiment>`,                            // bad ranks
		`<Experiment n="x"><CCT><N k="frame" l="zz"/></CCT></Experiment>`,       // bad line
		`<Experiment n="x"><CCT><N k="frame"><V c="0"/></N></CCT></Experiment>`, // incomplete value
		`<Metric n="y"/>`, // metric outside table
	}
	for _, src := range cases {
		if _, err := ReadXML(strings.NewReader(src)); err == nil {
			t.Errorf("ReadXML(%q) succeeded", src)
		}
	}
}

func TestReadBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ReadBinary(strings.NewReader("XXXXX")); err == nil {
		t.Fatal("bad magic accepted")
	}
	e := fixture(t)
	var buf bytes.Buffer
	if err := e.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(data[:len(data)/3])); err == nil {
		t.Fatal("truncated database accepted")
	}
}

func TestComputedColumnRoundTrips(t *testing.T) {
	// Computed columns (e.g. scaling loss) carry externally filled
	// values in both flavors; they must survive both formats verbatim
	// and must NOT be clobbered by derived re-evaluation at load.
	tree := core.Fig1Tree()
	d, err := tree.Reg.AddComputed("scaling loss", "cycles")
	if err != nil {
		t.Fatal(err)
	}
	h := tree.FindPath("m", "f", "g", "g", "h")
	h.Incl.Set(d.ID, 2.5)
	h.Excl.Set(d.ID, -1.25)
	e := New(tree)

	for name, codec := range map[string]struct {
		write func(*Experiment) ([]byte, error)
		read  func([]byte) (*Experiment, error)
	}{
		"xml": {
			func(e *Experiment) ([]byte, error) {
				var b bytes.Buffer
				err := e.WriteXML(&b)
				return b.Bytes(), err
			},
			func(data []byte) (*Experiment, error) { return ReadXML(bytes.NewReader(data)) },
		},
		"binary": {
			func(e *Experiment) ([]byte, error) {
				var b bytes.Buffer
				err := e.WriteBinary(&b)
				return b.Bytes(), err
			},
			func(data []byte) (*Experiment, error) { return ReadBinary(bytes.NewReader(data)) },
		},
	} {
		data, err := codec.write(e)
		if err != nil {
			t.Fatalf("%s write: %v", name, err)
		}
		got, err := codec.read(data)
		if err != nil {
			t.Fatalf("%s read: %v", name, err)
		}
		gd := got.Tree.Reg.ByName("scaling loss")
		if gd == nil || gd.Kind != metric.Computed {
			t.Fatalf("%s: computed column lost", name)
		}
		gh := got.Tree.FindPath("m", "f", "g", "g", "h")
		if gh.Incl.Get(gd.ID) != 2.5 || gh.Excl.Get(gd.ID) != -1.25 {
			t.Fatalf("%s: computed values = (%g, %g), want (2.5, -1.25)",
				name, gh.Incl.Get(gd.ID), gh.Excl.Get(gd.ID))
		}
	}
}

func TestMetricsRecomputedOnLoad(t *testing.T) {
	// The database stores only Base values (plus summary overrides);
	// presented metrics must come back from Equations 1 and 2 at load.
	e := New(core.Fig1Tree())
	var buf bytes.Buffer
	if err := e.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	// The XML must not contain a node with both inclusive and exclusive
	// materialized; spot check: h's exclusive 4 is derived, so "4" only
	// appears as base at the statement.
	got, err := ReadXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	h := got.Tree.FindPath("m", "f", "g", "g", "h")
	if h == nil {
		t.Fatal("h missing after reload")
	}
	if h.Incl.Get(0) != 4 || h.Excl.Get(0) != 4 {
		t.Fatalf("h = (%g,%g) after reload, want (4,4)",
			h.Incl.Get(0), h.Excl.Get(0))
	}
	if h.Base.Len() != 0 {
		t.Fatal("h should carry no base values")
	}
}

func TestAllSummaryOpsRoundTrip(t *testing.T) {
	tree := core.Fig1Tree()
	for _, op := range []metric.SummaryOp{metric.OpSum, metric.OpMean, metric.OpMin, metric.OpMax, metric.OpStdDev} {
		if _, err := tree.Reg.AddSummary(0, op); err != nil {
			t.Fatal(err)
		}
	}
	e := New(tree)
	var buf bytes.Buffer
	if err := e.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cost (sum)", "cost (mean)", "cost (min)", "cost (max)", "cost (stddev)"} {
		d := got.Tree.Reg.ByName(want)
		if d == nil || d.Kind != metric.Summary {
			t.Fatalf("summary column %q lost", want)
		}
	}
}

func TestKindAndOpNameErrors(t *testing.T) {
	if _, err := kindFromName("martian"); err == nil {
		t.Fatal("bad kind name accepted")
	}
	if _, err := opFromName("martian"); err == nil {
		t.Fatal("bad op name accepted")
	}
	if kindName(metric.Kind(200)) == "" {
		t.Fatal("unknown kind has empty name")
	}
}

func TestRebuildRegistryErrors(t *testing.T) {
	if _, err := rebuildRegistry([]metricDesc{{Name: "x", Kind: "martian"}}); err == nil {
		t.Fatal("bad kind accepted")
	}
	if _, err := rebuildRegistry([]metricDesc{{Name: "x", Kind: "derived", Formula: "(("}}); err == nil {
		t.Fatal("bad formula accepted")
	}
	if _, err := rebuildRegistry([]metricDesc{{Name: "x", Kind: "summary", Op: "mean", Source: 5}}); err == nil {
		t.Fatal("dangling summary source accepted")
	}
}
