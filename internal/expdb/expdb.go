// Package expdb reads and writes experiment databases: the fused artifact
// hpcprof hands to hpcviewer. A database stores the metric table (raw,
// derived and summary columns) and the canonical calling context tree with
// each scope's directly attributed costs; presented inclusive/exclusive
// values are recomputed at load time exactly as hpcviewer computes metrics
// during its initialization step (Section IV-A).
//
// Two on-disk formats are provided: XML (the paper's format) and a compact
// binary format with a string table — the replacement named as ongoing work
// in Section IX ("replacing our XML format for profiles with a more compact
// binary format"). The E-FMT benchmark compares them.
package expdb

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/merge"
	"repro/internal/metric"
)

// Experiment is an in-memory database.
type Experiment struct {
	// Program names the measured program.
	Program string
	// NRanks is the number of processes merged into the database.
	NRanks int
	// Tree is the canonical CCT with metrics computed.
	Tree *core.Tree
	// Provenance records how the database was produced when hpcprof
	// quarantined ranks ("merged 1021/1024 ranks"); nil when every rank
	// merged cleanly or the database predates provenance.
	Provenance *ingest.Report
	// Notes lists degradations applied while loading: a v2 database with a
	// damaged optional section opens without it, and each drop is recorded
	// here so the viewer can tell the user what is missing.
	Notes []string
	// TraceRanks are write-side trace sources, one per rank in ascending
	// rank order; WriteBinaryV3 streams each into a trace section and
	// bakes its zoom pyramid. Nil for databases without traces.
	TraceRanks []TraceRank
}

// SectionError reports fatal damage to one section of a v2 database: the
// section is required and its payload was damaged or malformed, so the
// database cannot be opened.
type SectionError struct {
	// Section names the damaged section ("strings", "header", "metrics",
	// "tree", "overrides", "provenance" or "framing").
	Section string
	Err     error
}

func (e *SectionError) Error() string {
	return fmt.Sprintf("expdb: %s section: %v", e.Section, e.Err)
}

func (e *SectionError) Unwrap() error { return e.Err }

// New wraps a computed tree as a single-rank experiment.
func New(t *core.Tree) *Experiment {
	return &Experiment{Program: t.Program, NRanks: 1, Tree: t}
}

// FromMerge wraps a merged multi-rank result.
func FromMerge(m *merge.Result) *Experiment {
	return &Experiment{Program: m.Tree.Program, NRanks: m.NRanks, Tree: m.Tree}
}

// finalize recomputes presented metrics after deserialization: Equations 1
// and 2 from the stored Base values, then the inclusive/exclusive
// overrides (summary statistics and externally computed columns), then
// derived columns.
func (e *Experiment) finalize(inclOv, exclOv map[*core.Node][]colVal) error {
	e.Tree.ComputeMetrics()
	for n, vals := range inclOv {
		for _, cv := range vals {
			n.Incl.Set(cv.col, cv.val)
		}
	}
	for n, vals := range exclOv {
		for _, cv := range vals {
			n.Excl.Set(cv.col, cv.val)
		}
	}
	return e.Tree.ApplyDerivedTree()
}

type colVal struct {
	col int
	val float64
}

// overrideCols returns the columns whose values cannot be recomputed from
// Base: inclusive overrides cover summary and computed columns; exclusive
// overrides only computed ones (summaries are inclusive-only).
func overrideCols(reg *metric.Registry) (incl, excl map[int]bool) {
	incl, excl = map[int]bool{}, map[int]bool{}
	for _, d := range reg.Columns() {
		switch d.Kind {
		case metric.Summary:
			incl[d.ID] = true
		case metric.Computed:
			incl[d.ID] = true
			excl[d.ID] = true
		}
	}
	return incl, excl
}

// overrideValues extracts from a metric view the entries in cols.
func overrideValues(v *metric.View, cols map[int]bool) []colVal {
	if len(cols) == 0 {
		return nil
	}
	var out []colVal
	v.Range(func(id int, x float64) {
		if cols[id] {
			out = append(out, colVal{col: id, val: x})
		}
	})
	return out
}

func kindName(k metric.Kind) string {
	switch k {
	case metric.Raw:
		return "raw"
	case metric.Derived:
		return "derived"
	case metric.Summary:
		return "summary"
	case metric.Computed:
		return "computed"
	}
	return fmt.Sprintf("kind%d", k)
}

func kindFromName(s string) (metric.Kind, error) {
	switch s {
	case "raw":
		return metric.Raw, nil
	case "derived":
		return metric.Derived, nil
	case "summary":
		return metric.Summary, nil
	case "computed":
		return metric.Computed, nil
	}
	return 0, fmt.Errorf("expdb: unknown metric kind %q", s)
}

func opName(op metric.SummaryOp) string { return op.String() }

func opFromName(s string) (metric.SummaryOp, error) {
	for _, op := range []metric.SummaryOp{metric.OpSum, metric.OpMean, metric.OpMin, metric.OpMax, metric.OpStdDev} {
		if op.String() == s {
			return op, nil
		}
	}
	return metric.OpNone, fmt.Errorf("expdb: unknown summary op %q", s)
}

// rebuildRegistry reconstructs a registry from serialized descriptors,
// preserving column order.
func rebuildRegistry(descs []metricDesc) (*metric.Registry, error) {
	reg := metric.NewRegistry()
	for i, d := range descs {
		kind, err := kindFromName(d.Kind)
		if err != nil {
			return nil, err
		}
		var nd *metric.Desc
		switch kind {
		case metric.Raw:
			nd, err = reg.AddRaw(d.Name, d.Unit, d.Period)
		case metric.Derived:
			nd, err = reg.AddDerived(d.Name, d.Formula)
		case metric.Summary:
			var op metric.SummaryOp
			op, err = opFromName(d.Op)
			if err == nil {
				nd, err = reg.AddSummary(d.Source, op)
			}
		case metric.Computed:
			nd, err = reg.AddComputed(d.Name, d.Unit)
		}
		if err != nil {
			return nil, fmt.Errorf("expdb: metric %d (%q): %w", i, d.Name, err)
		}
		if nd.ID != i {
			return nil, fmt.Errorf("expdb: metric %q mapped to column %d, want %d", d.Name, nd.ID, i)
		}
	}
	return reg, nil
}

// metricDesc is the serialized form of one metric column.
type metricDesc struct {
	Name    string
	Unit    string
	Kind    string
	Period  uint64
	Formula string
	Op      string
	Source  int
}

func descsOf(reg *metric.Registry) []metricDesc {
	out := make([]metricDesc, 0, reg.Len())
	for _, d := range reg.Columns() {
		out = append(out, metricDesc{
			Name:    d.Name,
			Unit:    d.Unit,
			Kind:    kindName(d.Kind),
			Period:  d.Period,
			Formula: d.Formula,
			Op:      opName(d.Op),
			Source:  d.Source,
		})
	}
	return out
}

// Summary-name caveat: AddSummary derives its column name from the source
// column; round trips preserve it because source columns precede summary
// columns in registry order.
