package expdb

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
	"unsafe"

	"repro/internal/core"
	"repro/internal/framing"
	"repro/internal/ingest"
	"repro/internal/intern"
	"repro/internal/metric"
	"repro/internal/mmapio"
)

// v3 ("CPDB3") is the zero-copy layout: the on-disk column sections ARE the
// in-memory representation. Where v2 stores sparse per-node value lists
// that must be decoded into heap slabs, v3 stores each metric column of
// each plane (Base, inclusive, exclusive — all three presented planes are
// baked at write time) as a dense little-endian float64 slab that a reader
// can mmap and hand to metric.Store verbatim:
//
//	offset 0   magic "CPDB3\x00\x00\x00"                  (8 bytes)
//	offset 8   sections, back to back at 8-aligned offsets,
//	           zero-padded to the next 8-byte boundary
//	           kinds: 1 strings, 2 header, 3 metrics, 4 tree (no base
//	           values — they live in the column slabs), 6 provenance,
//	           7 column (plane byte + column id; dense rows×8 payload),
//	           8 trace (col = rank; 16-byte records), 9 pyramid
//	           (col = rank, plane = level; 8-byte buckets), 10 tracemeta
//	           (singleton; 32-byte per-rank geometry entries)
//	index      count × 32-byte fixed-width entries:
//	           { kind u8, plane u8, rsvd u16, col u32,
//	             offset u64, length u64, crc32c u32, rsvd u32 }
//	trailer    { indexOff u64, count u64, indexCRC u32, rsvd u32,
//	             end magic "CPDB3IDX" }                    (32 bytes)
//
// Open is O(index): only the trailer and index are decoded and validated —
// metadata sections fault in on first Experiment() access and each column
// section's CRC32C (over its padded span, so every file byte is covered by
// exactly one check) is verified memoized on first touch. Row ids are
// structural: row 0 is the tree's root, preorder node i is row i+1, so the
// slab index in the file equals the store row the reader's arena assigns.
// All-zero columns are omitted; zeros are written as +0 bits (the store
// never holds -0), keeping mapped reads bitwise equal to a v2 decode.
// MagicV3 is the sniffable prefix of the mappable v3 format, exported so
// callers can decide between a stream open and OpenMapped.
const MagicV3 = dbMagicV3

const (
	dbMagicV3     = "CPDB3"
	dbMagicV3Full = "CPDB3\x00\x00\x00"
	dbMagicV3End  = "CPDB3IDX"
)

// dbSecColumn is the v3-only section kind holding one dense column slab.
const dbSecColumn byte = 7

// v3-only trace section kinds. Trace sections hold one rank's raw
// fixed-width event records (col = rank); pyramid sections hold one zoom
// level of that rank's mipmap (col = rank, plane = level, 0 finest);
// tracemeta is a singleton table of 32-byte per-rank geometry entries:
//
//	{ rank u32, nbuckets u32, count u64, lastT u64, width u64 }
const (
	dbSecTrace     byte = 8
	dbSecPyramid   byte = 9
	dbSecTraceMeta byte = 10
)

// traceMetaEntrySize is the fixed width of one tracemeta table entry.
const traceMetaEntrySize = 32

const (
	v3EntrySize   = 32
	v3TrailerSize = 32
)

// v3sec is one decoded index entry.
type v3sec struct {
	kind   uint8
	plane  uint8
	col    uint32
	off    int64
	length int64 // logical, excluding pad
	crc    uint32
}

func v3PlaneName(p uint8) string {
	switch metric.Plane(p) {
	case metric.PlaneBase:
		return "base"
	case metric.PlaneIncl:
		return "inclusive"
	case metric.PlaneExcl:
		return "exclusive"
	}
	return fmt.Sprintf("plane%d", p)
}

// --- writer ----------------------------------------------------------

// WriteBinaryV3 serializes the experiment in the mappable v3 format. The
// presented inclusive/exclusive planes are baked into column slabs, so a
// v3 open never recomputes metrics or re-applies derived kernels.
func (e *Experiment) WriteBinaryV3(w io.Writer) error {
	// The slabs persist the presented planes verbatim, so they must be
	// final before the walk: compute Equations 1/2 if nothing has, and
	// (re-)apply derived formulas — both no-ops on a finalized tree.
	e.Tree.EnsureComputed()
	if err := e.Tree.ApplyDerivedTree(); err != nil {
		return err
	}
	tab := newStrTable()
	e.internStrings(tab)

	var strs bytes.Buffer
	bufU(&strs, uint64(len(tab.vals)))
	for _, s := range tab.vals {
		bufS(&strs, s)
	}
	var hdr bytes.Buffer
	bufU(&hdr, tab.ref(e.Program))
	bufU(&hdr, uint64(e.NRanks))
	metricsPayload, err := e.encodeMetrics(tab)
	if err != nil {
		return err
	}
	treePayload, nodes := e.encodeTreeV3(tab)

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(dbMagicV3Full); err != nil {
		return err
	}
	aw := framing.NewAlignedWriter(bw, int64(len(dbMagicV3Full)))

	type entry struct {
		kind  uint8
		plane uint8
		col   uint32
		sec   framing.AlignedSection
	}
	var entries []entry
	add := func(kind, plane uint8, col uint32, sec framing.AlignedSection) {
		entries = append(entries, entry{kind, plane, col, sec})
	}
	emit := func(kind, plane uint8, col uint32, payload []byte) error {
		sec, err := aw.Section(payload)
		if err != nil {
			return err
		}
		add(kind, plane, col, sec)
		return nil
	}
	for _, s := range []struct {
		kind    byte
		payload []byte
	}{
		{dbSecStrings, strs.Bytes()},
		{dbSecHeader, hdr.Bytes()},
		{dbSecMetrics, metricsPayload},
		{dbSecTree, treePayload},
	} {
		if err := emit(s.kind, 0, 0, s.payload); err != nil {
			return err
		}
	}

	// Column slabs: row 0 is the root, preorder node i is row i+1 — the
	// same rows the reader's arena will assign. All-zero slabs are omitted
	// (absent columns read as zero); zeros are written as +0 bits.
	rows := len(nodes) + 1
	slab := make([]byte, rows*8)
	views := [3]func(n *core.Node) *metric.View{
		func(n *core.Node) *metric.View { return &n.Base },
		func(n *core.Node) *metric.View { return &n.Incl },
		func(n *core.Node) *metric.View { return &n.Excl },
	}
	nCols := e.Tree.Reg.Len()
	for col := 0; col < nCols; col++ {
		for plane := 0; plane < 3; plane++ {
			view := views[plane]
			nonzero := false
			put := func(row int, n *core.Node) {
				v := view(n).Get(col)
				bits := math.Float64bits(v)
				if v == 0 {
					bits = 0
				} else {
					nonzero = true
				}
				binary.LittleEndian.PutUint64(slab[row*8:], bits)
			}
			put(0, e.Tree.Root)
			for i, n := range nodes {
				put(i+1, n)
			}
			if !nonzero {
				continue
			}
			if err := emit(dbSecColumn, uint8(plane), uint32(col), slab); err != nil {
				return err
			}
		}
	}
	if e.Provenance != nil {
		if err := emit(dbSecProvenance, 0, 0, encodeProvenance(e.Provenance)); err != nil {
			return err
		}
	}
	// Trace sections stream through the aligned writer so peak memory
	// stays at the chunk buffer regardless of event count; each rank's
	// pyramid is built in the same single pass.
	if err := e.writeTraceSections(aw, emit, add); err != nil {
		return err
	}

	idx := make([]byte, len(entries)*v3EntrySize)
	for i, en := range entries {
		o := i * v3EntrySize
		idx[o] = en.kind
		idx[o+1] = en.plane
		binary.LittleEndian.PutUint32(idx[o+4:], en.col)
		binary.LittleEndian.PutUint64(idx[o+8:], uint64(en.sec.Offset))
		binary.LittleEndian.PutUint64(idx[o+16:], uint64(en.sec.Length))
		binary.LittleEndian.PutUint32(idx[o+24:], en.sec.CRC)
	}
	indexOff := aw.Offset()
	if _, err := bw.Write(idx); err != nil {
		return err
	}
	var tr [v3TrailerSize]byte
	binary.LittleEndian.PutUint64(tr[0:], uint64(indexOff))
	binary.LittleEndian.PutUint64(tr[8:], uint64(len(entries)))
	binary.LittleEndian.PutUint32(tr[16:], framing.Checksum(idx))
	copy(tr[24:], dbMagicV3End)
	if _, err := bw.Write(tr[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// encodeTreeV3 emits the preorder node stream without any metric values
// (they live in the column slabs) and returns the nodes in preorder, which
// fixes the file's row numbering.
func (e *Experiment) encodeTreeV3(tab *strTable) ([]byte, []*core.Node) {
	var b bytes.Buffer
	var nodes []*core.Node
	var walk func(n *core.Node)
	walk = func(n *core.Node) {
		nodes = append(nodes, n)
		flags := uint64(0)
		if n.NoSource {
			flags |= 1
		}
		for _, v := range []uint64{
			uint64(n.Kind),
			tab.refSym(n.Name), tab.refSym(n.File), uint64(n.Line), n.ID,
			uint64(n.CallLine), tab.refSym(n.CallFile), tab.refSym(n.Mod),
			flags,
		} {
			bufU(&b, v)
		}
		bufU(&b, uint64(len(n.Children)))
		for _, c := range n.Children {
			walk(c)
		}
	}
	bufU(&b, uint64(len(e.Tree.Root.Children)))
	for _, c := range e.Tree.Root.Children {
		walk(c)
	}
	return b.Bytes(), nodes
}

// --- index parsing ---------------------------------------------------

// parseV3Index validates everything the O(index) open trusts: magic,
// trailer, index checksum, and per-entry invariants — 8-aligned offsets,
// exact tiling of the section area (no unindexed gaps), reserved fields
// zero, plane/column constraints, exactly one of each required metadata
// section. Section payloads themselves are NOT touched here.
func parseV3Index(data []byte) ([]v3sec, error) {
	size := int64(len(data))
	if size < int64(len(dbMagicV3Full))+v3TrailerSize {
		return nil, fmt.Errorf("expdb: v3 database truncated (%d bytes)", size)
	}
	if string(data[:len(dbMagicV3Full)]) != dbMagicV3Full {
		return nil, fmt.Errorf("expdb: bad v3 magic %q", data[:len(dbMagicV3Full)])
	}
	tr := data[size-v3TrailerSize:]
	if string(tr[24:32]) != dbMagicV3End {
		return nil, fmt.Errorf("expdb: v3 trailer magic missing (file truncated or corrupt)")
	}
	if binary.LittleEndian.Uint32(tr[20:24]) != 0 {
		return nil, fmt.Errorf("expdb: v3 trailer reserved bytes are nonzero")
	}
	indexOff := binary.LittleEndian.Uint64(tr[0:8])
	count := binary.LittleEndian.Uint64(tr[8:16])
	indexCRC := binary.LittleEndian.Uint32(tr[16:20])
	if indexOff < uint64(len(dbMagicV3Full)) || indexOff%framing.Align != 0 || indexOff > uint64(size-v3TrailerSize) {
		return nil, fmt.Errorf("expdb: v3 index offset %d out of bounds", indexOff)
	}
	indexLen := uint64(size-v3TrailerSize) - indexOff
	if count > uint64(size)/v3EntrySize || count*v3EntrySize != indexLen {
		return nil, fmt.Errorf("expdb: v3 index length %d does not match %d entries", indexLen, count)
	}
	idx := data[indexOff : indexOff+indexLen]
	if framing.Checksum(idx) != indexCRC {
		return nil, fmt.Errorf("expdb: v3 index failed its CRC32C check")
	}

	secs := make([]v3sec, count)
	next := int64(len(dbMagicV3Full))
	var haveStrings, haveHeader, haveMetrics, haveTree, haveTraceMeta bool
	colSeen := map[uint64]bool{}
	traceSeen := map[uint32]bool{}
	pyrSeen := map[uint64]bool{}
	for i := range secs {
		en := idx[i*v3EntrySize:]
		s := v3sec{
			kind:   en[0],
			plane:  en[1],
			col:    binary.LittleEndian.Uint32(en[4:8]),
			off:    int64(binary.LittleEndian.Uint64(en[8:16])),
			length: int64(binary.LittleEndian.Uint64(en[16:24])),
			crc:    binary.LittleEndian.Uint32(en[24:28]),
		}
		if binary.LittleEndian.Uint16(en[2:4]) != 0 || binary.LittleEndian.Uint32(en[28:32]) != 0 {
			return nil, fmt.Errorf("expdb: v3 index entry %d has nonzero reserved bytes", i)
		}
		if s.length < 0 || s.off != next || s.off+framing.AlignUp(s.length) > int64(indexOff) {
			return nil, fmt.Errorf("expdb: v3 section %d (kind %d) does not tile the section area", i, s.kind)
		}
		next = s.off + framing.AlignUp(s.length)
		switch s.kind {
		case dbSecStrings, dbSecHeader, dbSecMetrics, dbSecTree:
			have := map[uint8]*bool{
				dbSecStrings: &haveStrings, dbSecHeader: &haveHeader,
				dbSecMetrics: &haveMetrics, dbSecTree: &haveTree,
			}[s.kind]
			if *have {
				return nil, &SectionError{Section: sectionName(s.kind), Err: fmt.Errorf("duplicate section")}
			}
			*have = true
			if s.plane != 0 || s.col != 0 {
				return nil, fmt.Errorf("expdb: v3 %s section has column fields set", sectionName(s.kind))
			}
		case dbSecProvenance:
			if s.plane != 0 || s.col != 0 {
				return nil, fmt.Errorf("expdb: v3 provenance section has column fields set")
			}
		case dbSecColumn:
			if s.plane > 2 {
				return nil, fmt.Errorf("expdb: v3 column section has bad plane %d", s.plane)
			}
			if s.length%8 != 0 {
				return nil, fmt.Errorf("expdb: v3 column section length %d is not a multiple of 8", s.length)
			}
			key := uint64(s.col)<<2 | uint64(s.plane)
			if colSeen[key] {
				return nil, fmt.Errorf("expdb: duplicate v3 column section (metric %d, %s)", s.col, v3PlaneName(s.plane))
			}
			colSeen[key] = true
		case dbSecTrace:
			if s.plane != 0 {
				return nil, fmt.Errorf("expdb: v3 trace section has nonzero plane %d", s.plane)
			}
			if s.length%16 != 0 {
				return nil, fmt.Errorf("expdb: v3 trace section length %d is not a multiple of 16", s.length)
			}
			if traceSeen[s.col] {
				return nil, fmt.Errorf("expdb: duplicate v3 trace section for rank %d", s.col)
			}
			traceSeen[s.col] = true
		case dbSecPyramid:
			if s.length%8 != 0 {
				return nil, fmt.Errorf("expdb: v3 pyramid section length %d is not a multiple of 8", s.length)
			}
			key := uint64(s.col)<<8 | uint64(s.plane)
			if pyrSeen[key] {
				return nil, fmt.Errorf("expdb: duplicate v3 pyramid section (rank %d, level %d)", s.col, s.plane)
			}
			pyrSeen[key] = true
		case dbSecTraceMeta:
			if haveTraceMeta {
				return nil, fmt.Errorf("expdb: duplicate v3 tracemeta section")
			}
			haveTraceMeta = true
			if s.plane != 0 || s.col != 0 {
				return nil, fmt.Errorf("expdb: v3 tracemeta section has column fields set")
			}
			if s.length%traceMetaEntrySize != 0 {
				return nil, fmt.Errorf("expdb: v3 tracemeta section length %d is not a multiple of %d", s.length, traceMetaEntrySize)
			}
		default:
			return nil, fmt.Errorf("expdb: unknown v3 section kind %d", s.kind)
		}
		secs[i] = s
	}
	if next != int64(indexOff) {
		return nil, fmt.Errorf("expdb: v3 sections leave an unindexed gap before the index")
	}
	for _, req := range []struct {
		ok   bool
		name string
	}{{haveStrings, "strings"}, {haveHeader, "header"}, {haveMetrics, "metrics"}, {haveTree, "tree"}} {
		if !req.ok {
			return nil, &SectionError{Section: req.name, Err: fmt.Errorf("section missing")}
		}
	}
	return secs, nil
}

// --- mapped database -------------------------------------------------

// MappedDB is a v3 experiment database opened zero-copy: the file is
// mapped (or read page-aligned, see mmapio) and column slabs are float64
// views straight into the mapping, installed in the metric store as
// borrowed columns. Open cost is O(index); metadata decodes on the first
// Experiment call; each column section's checksum is verified exactly once,
// on first touch (NeedColumn), with damage degrading to a zeroed column
// plus an Experiment.Notes entry — mirroring the v2 lazy contract.
//
// The mapping is strictly read-only. Writers that would touch a mapped
// column (a diff Recompute, a summary rewrite) hit the store's
// copy-on-write and scribble a private heap copy instead. Close unmaps;
// the caller must guarantee no views into the mapping are dereferenced
// afterwards (the engine refcounts sessions for exactly this).
type MappedDB struct {
	mu     sync.Mutex
	region *mmapio.Region // nil when backed by caller-provided bytes
	data   []byte
	secs   []v3sec
	// verified memoizes per-section CRC outcomes for lazily checked
	// sections (columns, provenance), by index into secs.
	verified map[int]error

	exp      *Experiment
	nodes    []*core.Node
	rows     int
	metaDone bool
	metaErr  error

	colSecs map[int][]int // metric column id -> indexes into secs

	provDone bool
	provErr  error

	traceDone bool
	traceView *TraceView

	reads map[string]int
}

// OpenMapped opens a v3 database file zero-copy. Only the fixed-width
// index is decoded — the call is O(index) regardless of database size.
// The returned database must be closed to release the mapping, and only
// once nothing reads its slabs anymore.
func OpenMapped(path string) (*MappedDB, error) {
	region, err := mmapio.Map(path)
	if err != nil {
		return nil, err
	}
	db, err := newMappedDB(region.Bytes())
	if err != nil {
		region.Close()
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	db.region = region
	return db, nil
}

func newMappedDB(data []byte) (*MappedDB, error) {
	secs, err := parseV3Index(data)
	if err != nil {
		return nil, err
	}
	db := &MappedDB{
		data:     data,
		secs:     secs,
		verified: map[int]error{},
		colSecs:  map[int][]int{},
		reads:    map[string]int{"index": 1},
	}
	for i, s := range secs {
		if s.kind == dbSecColumn {
			db.colSecs[int(s.col)] = append(db.colSecs[int(s.col)], i)
		}
	}
	return db, nil
}

// payload returns a section's logical bytes; span the padded bytes its CRC
// covers.
func (db *MappedDB) payload(s v3sec) []byte { return db.data[s.off : s.off+s.length] }
func (db *MappedDB) span(s v3sec) []byte {
	return db.data[s.off : s.off+framing.AlignUp(s.length)]
}

func (db *MappedDB) findSec(kind byte) (v3sec, bool) {
	for _, s := range db.secs {
		if s.kind == kind {
			return s, true
		}
	}
	return v3sec{}, false
}

// Mapped reports whether the database is backed by a true memory mapping.
func (db *MappedDB) Mapped() bool { return db.region != nil && db.region.Mapped() }

// MappedBytes exposes the raw mapped file bytes for residency probing
// (diag.Residency). Read-only.
func (db *MappedDB) MappedBytes() []byte { return db.data }

// SectionReads reports how many times each kind of section has been
// decoded or checksummed, keyed by name ("index", "strings", "header",
// "metrics", "tree", "column", "provenance") — the observable that a
// mapped open is O(index) and column checks are memoized. The map is a
// copy.
func (db *MappedDB) SectionReads() map[string]int {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make(map[string]int, len(db.reads))
	for k, v := range db.reads {
		out[k] = v
	}
	return out
}

// Close releases the mapping. Must not be called while any session still
// reads the database: borrowed slabs point into the mapping.
func (db *MappedDB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.region != nil {
		r := db.region
		db.region = nil
		return r.Close()
	}
	return nil
}

// Experiment decodes the metadata sections (strings, header, metrics,
// tree) on first call — verifying their checksums then — builds the tree
// with structural row ids, and installs every column slab zero-copy as a
// borrowed store column. Column checksums are NOT verified here; they are
// memoized per section on first touch (NeedColumn/VerifyAll).
func (db *MappedDB) Experiment() (*Experiment, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.experimentLocked()
}

func (db *MappedDB) experimentLocked() (*Experiment, error) {
	if db.metaDone {
		return db.exp, db.metaErr
	}
	db.metaDone = true
	db.exp, db.nodes, db.metaErr = db.decodeMeta()
	if db.metaErr != nil {
		db.exp = nil
		return nil, db.metaErr
	}
	db.rows = len(db.nodes) + 1
	db.adoptColumnsLocked()
	return db.exp, nil
}

func (db *MappedDB) decodeMeta() (*Experiment, []*core.Node, error) {
	secErr := func(name string, err error) error { return &SectionError{Section: name, Err: err} }
	crcErr := func(name string) error {
		return secErr(name, fmt.Errorf("section failed its CRC32C check"))
	}
	reader := func(s v3sec) (*bufio.Reader, func() int64) {
		bound := s.length
		return bufio.NewReader(bytes.NewReader(db.payload(s))), func() int64 { return bound }
	}

	// Strings.
	s, _ := db.findSec(dbSecStrings)
	if framing.ChecksumPadded(db.span(s)) != s.crc {
		return nil, nil, crcErr("strings")
	}
	db.reads["strings"]++
	pr, bound := reader(s)
	nStr, err := getU(pr)
	if err != nil {
		return nil, nil, secErr("strings", noEOF(err))
	}
	if int64(nStr) > bound() {
		return nil, nil, secErr("strings", fmt.Errorf("implausible string count %d", nStr))
	}
	syms, err := readStrTable(pr, nStr, bound)
	if err != nil {
		return nil, nil, secErr("strings", err)
	}

	// Header.
	e := &Experiment{}
	s, _ = db.findSec(dbSecHeader)
	if framing.ChecksumPadded(db.span(s)) != s.crc {
		return nil, nil, crcErr("header")
	}
	db.reads["header"]++
	pr, _ = reader(s)
	progRef, err := getU(pr)
	if err != nil {
		return nil, nil, secErr("header", noEOF(err))
	}
	if progRef >= uint64(len(syms)) {
		return nil, nil, secErr("header", fmt.Errorf("string ref %d out of range", progRef))
	}
	e.Program = syms[progRef].String()
	ranks, err := getU(pr)
	if err != nil {
		return nil, nil, secErr("header", noEOF(err))
	}
	if ranks > math.MaxInt32 {
		return nil, nil, secErr("header", fmt.Errorf("implausible rank count %d", ranks))
	}
	e.NRanks = int(ranks)

	// Metrics.
	s, _ = db.findSec(dbSecMetrics)
	if framing.ChecksumPadded(db.span(s)) != s.crc {
		return nil, nil, crcErr("metrics")
	}
	db.reads["metrics"]++
	pr, bound = reader(s)
	getS := func() (string, error) {
		i, err := getU(pr)
		if err != nil {
			return "", err
		}
		if i >= uint64(len(syms)) {
			return "", fmt.Errorf("expdb: string ref %d out of range", i)
		}
		return syms[i].String(), nil
	}
	descs, err := readMetricDescs(pr, getS, bound)
	if err != nil {
		return nil, nil, secErr("metrics", err)
	}
	reg, err := rebuildRegistry(descs)
	if err != nil {
		return nil, nil, secErr("metrics", err)
	}

	// Tree.
	s, _ = db.findSec(dbSecTree)
	if framing.ChecksumPadded(db.span(s)) != s.crc {
		return nil, nil, crcErr("tree")
	}
	db.reads["tree"]++
	pr, bound = reader(s)
	e.Tree = core.NewTree(e.Program, reg)
	nodes, err := readTreeSectionV3(pr, e, syms, bound)
	if err != nil {
		return nil, nil, secErr("tree", err)
	}
	if got := e.Tree.MetricStore().NumRows(); got != len(nodes)+1 {
		return nil, nil, secErr("tree", fmt.Errorf("row count %d does not match %d nodes", got, len(nodes)))
	}
	// Presented planes are baked in the column slabs: recomputation must
	// not overwrite (and copy) them.
	e.Tree.MarkComputed()
	return e, nodes, nil
}

// adoptColumnsLocked installs every structurally valid column slab as a
// borrowed store column. A slab whose row count does not match the tree
// degrades immediately (note + skip); checksums wait for first touch.
func (db *MappedDB) adoptColumnsLocked() {
	st := db.exp.Tree.MetricStore()
	nCols := db.exp.Tree.Reg.Len()
	for i, s := range db.secs {
		if s.kind != dbSecColumn {
			continue
		}
		if int64(s.col) >= int64(nCols) || int(s.length/8) != db.rows {
			db.verified[i] = fmt.Errorf("expdb: column section (metric %d, %s) is malformed", s.col, v3PlaneName(s.plane))
			db.exp.Notes = append(db.exp.Notes, fmt.Sprintf(
				"column section (metric %d, %s) does not match the tree; its values were dropped", s.col, v3PlaneName(s.plane)))
			continue
		}
		st.AdoptCol(metric.Plane(s.plane), int(s.col), float64View(db.payload(s)), true)
	}
}

// NeedColumn verifies (once) the checksums of every section backing metric
// column id. Damage degrades: the column is detached — it reads as zero —
// and the drop is recorded in Experiment.Notes, never an error or a fault.
// This is the engine snapshot's column faulter for mapped databases.
func (db *MappedDB) NeedColumn(id int) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, err := db.experimentLocked(); err != nil {
		return err
	}
	for _, si := range db.colSecs[id] {
		db.verifyColLocked(si)
	}
	return nil
}

func (db *MappedDB) verifyColLocked(si int) {
	if _, done := db.verified[si]; done {
		return
	}
	s := db.secs[si]
	db.reads["column"]++
	if framing.ChecksumPadded(db.span(s)) != s.crc {
		err := fmt.Errorf("expdb: column section (metric %d, %s) failed its CRC32C check", s.col, v3PlaneName(s.plane))
		db.verified[si] = err
		db.exp.Tree.MetricStore().DetachCol(metric.Plane(s.plane), int(s.col))
		db.exp.Notes = append(db.exp.Notes, fmt.Sprintf(
			"column section (metric %d, %s) failed its CRC32C check; its values were dropped", s.col, v3PlaneName(s.plane)))
		return
	}
	db.verified[si] = nil
}

// Provenance decodes the provenance section on first call (nil when absent
// or dropped after checksum damage, mirroring the v2 lazy contract).
func (db *MappedDB) Provenance() (*ingest.Report, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, err := db.experimentLocked(); err != nil {
		return nil, err
	}
	if err := db.loadProvenanceLocked(); err != nil {
		return nil, err
	}
	return db.exp.Provenance, nil
}

func (db *MappedDB) loadProvenanceLocked() error {
	if db.provDone {
		return db.provErr
	}
	db.provDone = true
	for _, s := range db.secs {
		if s.kind != dbSecProvenance {
			continue
		}
		if framing.ChecksumPadded(db.span(s)) != s.crc {
			db.exp.Notes = append(db.exp.Notes, "provenance section failed its checksum; the quarantine record was dropped")
			continue
		}
		db.reads["provenance"]++
		bound := s.length
		pr := bufio.NewReader(bytes.NewReader(db.payload(s)))
		rep, err := readProvenanceSection(pr, func() int64 { return bound })
		if err != nil {
			db.provErr = &SectionError{Section: "provenance", Err: err}
			return db.provErr
		}
		db.exp.Provenance = rep
	}
	return nil
}

// VerifyAll checks every section checksum and decodes all lazily deferred
// state — the mapped equivalent of LazyDB.MaterializeAll, used before
// handing the experiment to consumers that will not fault columns
// themselves. Column damage still degrades (notes), so the returned error
// reflects only fatal metadata problems.
func (db *MappedDB) VerifyAll() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, err := db.experimentLocked(); err != nil {
		return err
	}
	for si, s := range db.secs {
		if s.kind == dbSecColumn {
			db.verifyColLocked(si)
		}
	}
	return db.loadProvenanceLocked()
}

// --- eager reader ----------------------------------------------------

// readBinaryV3 is the stream (non-mapped) v3 decode used by Read,
// ReadBinary and OpenLazy: the whole input is buffered, every checksum is
// verified up front, and the experiment is returned fully materialized.
// Column slabs still alias the read buffer (adopted copy-on-write), which
// is safe heap memory here — no mapping lifetime to manage.
func readBinaryV3(br *bufio.Reader) (*Experiment, error) {
	data, err := io.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("expdb: %w", err)
	}
	db, err := newMappedDB(data)
	if err != nil {
		return nil, err
	}
	exp, err := db.Experiment()
	if err != nil {
		return nil, err
	}
	if err := db.VerifyAll(); err != nil {
		return nil, err
	}
	// Adopt trace sections too: damage there degrades the open with notes
	// (traces dropped) exactly as the mapped path does, instead of passing
	// silently through an eager read.
	if _, err := db.Trace(); err != nil {
		return nil, err
	}
	return exp, nil
}

// readTreeSectionV3 parses the v3 tree section: the v2 preorder node
// stream minus the inline base-value lists (v3 stores values in column
// slabs). Returned nodes are in preorder; their arena rows are 1..n.
func readTreeSectionV3(br *bufio.Reader, e *Experiment, syms []intern.Sym, remaining func() int64) ([]*core.Node, error) {
	getSym := func() (intern.Sym, error) {
		i, err := getU(br)
		if err != nil {
			return 0, err
		}
		if i >= uint64(len(syms)) {
			return 0, fmt.Errorf("expdb: string ref %d out of range", i)
		}
		return syms[i], nil
	}
	var nodes []*core.Node
	var readNode func(parent *core.Node, depth int) error
	readNode = func(parent *core.Node, depth int) error {
		if depth > 100000 {
			return fmt.Errorf("expdb: tree too deep")
		}
		n, err := readNodeHeader(br, parent, getSym)
		if err != nil {
			return err
		}
		nodes = append(nodes, n)
		nc, err := getU(br)
		if err != nil {
			return err
		}
		if int64(nc) > remaining() {
			return fmt.Errorf("expdb: implausible child count %d", nc)
		}
		for i := uint64(0); i < nc; i++ {
			if err := readNode(n, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	nRoots, err := getU(br)
	if err != nil {
		return nil, noEOF(err)
	}
	if int64(nRoots) > remaining() {
		return nil, fmt.Errorf("expdb: implausible root count %d", nRoots)
	}
	for i := uint64(0); i < nRoots; i++ {
		if err := readNode(e.Tree.Root, 0); err != nil {
			return nil, err
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("expdb: trailing bytes in tree section")
	}
	return nodes, nil
}

// hostLittleEndian reports whether float64 slabs can be viewed in place.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// float64View reinterprets little-endian float64 bytes as a []float64
// without copying when the platform allows it (little-endian host, 8-byte-
// aligned base — mmap regions and 8-aligned section offsets guarantee the
// latter); otherwise it falls back to a decoded copy.
func float64View(b []byte) []float64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
