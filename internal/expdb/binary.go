package expdb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/intern"
)

// Compact binary database format ("CPDB1"):
//
//	magic "CPDB1"
//	program stringRef? No — header strings precede the table:
//	  nStrings, strings (uvarint len + bytes)   -- string table
//	  programRef, ranks
//	  nMetrics { nameRef unitRef kindByte period formulaRef opByte src }
//	  node := kindByte nameRef fileRef line id callLine callFileRef modRef
//	          flags
//	          nBase   { col, float64bits }*
//	          nSummary{ col, float64bits }*
//	          nChildren node*
//
// All integers are uvarints except float64 payloads (fixed 8 bytes LE).
// Strings are interned: names, files and modules repeat across thousands
// of scopes, which is the main reason this format is much smaller than the
// XML (Section IX's motivation).

const dbMagic = "CPDB1"

type strTable struct {
	byVal map[string]uint64
	bySym map[intern.Sym]uint64
	vals  []string
}

func newStrTable() *strTable {
	t := &strTable{byVal: map[string]uint64{}, bySym: map[intern.Sym]uint64{}}
	t.ref("") // index 0 is always the empty string
	return t
}

func (t *strTable) ref(s string) uint64 {
	if i, ok := t.byVal[s]; ok {
		return i
	}
	i := uint64(len(t.vals))
	t.byVal[s] = i
	t.vals = append(t.vals, s)
	return i
}

// refSym references an interned symbol's string. The sym-keyed cache makes
// the per-node path a single integer map probe; misses delegate to ref, so
// table construction order — and hence the output bytes — are exactly those
// of the string-keyed writer.
func (t *strTable) refSym(y intern.Sym) uint64 {
	if i, ok := t.bySym[y]; ok {
		return i
	}
	i := t.ref(y.String())
	t.bySym[y] = i
	return i
}

// WriteBinary serializes the experiment in the compact format.
func (e *Experiment) WriteBinary(w io.Writer) error {
	// Pass 1: intern every string.
	tab := newStrTable()
	tab.ref(e.Program)
	descs := descsOf(e.Tree.Reg)
	for _, d := range descs {
		tab.ref(d.Name)
		tab.ref(d.Unit)
		tab.ref(d.Formula)
	}
	core.Walk(e.Tree.Root, func(n *core.Node) bool {
		tab.refSym(n.Name)
		tab.refSym(n.File)
		tab.refSym(n.CallFile)
		tab.refSym(n.Mod)
		return true
	})

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(dbMagic); err != nil {
		return err
	}
	putU := func(v uint64) error {
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putF := func(v float64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		_, err := bw.Write(buf[:])
		return err
	}
	if err := putU(uint64(len(tab.vals))); err != nil {
		return err
	}
	for _, s := range tab.vals {
		if err := putU(uint64(len(s))); err != nil {
			return err
		}
		if _, err := bw.WriteString(s); err != nil {
			return err
		}
	}
	if err := putU(tab.ref(e.Program)); err != nil {
		return err
	}
	if err := putU(uint64(e.NRanks)); err != nil {
		return err
	}
	if err := putU(uint64(len(descs))); err != nil {
		return err
	}
	for _, d := range descs {
		kindByte := uint64(0)
		switch d.Kind {
		case "raw":
			kindByte = 0
		case "derived":
			kindByte = 1
		case "summary":
			kindByte = 2
		case "computed":
			kindByte = 3
		default:
			return fmt.Errorf("expdb: unknown kind %q", d.Kind)
		}
		opByte := uint64(0)
		switch d.Op {
		case "":
			opByte = 0
		case "sum":
			opByte = 1
		case "mean":
			opByte = 2
		case "min":
			opByte = 3
		case "max":
			opByte = 4
		case "stddev":
			opByte = 5
		default:
			return fmt.Errorf("expdb: unknown op %q", d.Op)
		}
		for _, v := range []uint64{tab.ref(d.Name), tab.ref(d.Unit), kindByte, d.Period, tab.ref(d.Formula), opByte, uint64(d.Source)} {
			if err := putU(v); err != nil {
				return err
			}
		}
	}

	inclOv, exclOv := overrideCols(e.Tree.Reg)
	var writeNode func(n *core.Node) error
	writeNode = func(n *core.Node) error {
		flags := uint64(0)
		if n.NoSource {
			flags |= 1
		}
		hdr := []uint64{
			uint64(n.Kind),
			tab.refSym(n.Name), tab.refSym(n.File), uint64(n.Line), n.ID,
			uint64(n.CallLine), tab.refSym(n.CallFile), tab.refSym(n.Mod),
			flags,
		}
		for _, v := range hdr {
			if err := putU(v); err != nil {
				return err
			}
		}
		var verr error
		if err := putU(uint64(n.Base.Len())); err != nil {
			return err
		}
		n.Base.Range(func(id int, v float64) {
			if verr != nil {
				return
			}
			if verr = putU(uint64(id)); verr == nil {
				verr = putF(v)
			}
		})
		if verr != nil {
			return verr
		}
		for _, ov := range [][]colVal{overrideValues(&n.Incl, inclOv), overrideValues(&n.Excl, exclOv)} {
			if err := putU(uint64(len(ov))); err != nil {
				return err
			}
			for _, cv := range ov {
				if err := putU(uint64(cv.col)); err != nil {
					return err
				}
				if err := putF(cv.val); err != nil {
					return err
				}
			}
		}
		if err := putU(uint64(len(n.Children))); err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := writeNode(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := putU(uint64(len(e.Tree.Root.Children))); err != nil {
		return err
	}
	for _, c := range e.Tree.Root.Children {
		if err := writeNode(c); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes the compact format and recomputes presented
// metrics.
func ReadBinary(r io.Reader) (*Experiment, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(dbMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("expdb: %w", err)
	}
	if string(magic) != dbMagic {
		return nil, fmt.Errorf("expdb: bad magic %q", magic)
	}
	getU := func() (uint64, error) { return binary.ReadUvarint(br) }
	getF := func() (float64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
	}

	nStr, err := getU()
	if err != nil {
		return nil, err
	}
	if nStr > 10_000_000 {
		return nil, fmt.Errorf("expdb: implausible string count %d", nStr)
	}
	// The on-disk string table maps straight onto interner ids: each
	// distinct string is interned exactly once per load (zero per node),
	// through a reused read buffer — intern.B probes without copying and
	// only a first-ever-seen string is materialized on the heap.
	syms := make([]intern.Sym, nStr)
	var sbuf []byte
	for i := range syms {
		l, err := getU()
		if err != nil {
			return nil, err
		}
		if l > 1<<20 {
			return nil, fmt.Errorf("expdb: implausible string length %d", l)
		}
		if uint64(cap(sbuf)) < l {
			sbuf = make([]byte, l)
		}
		b := sbuf[:l]
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, err
		}
		syms[i] = intern.B(b)
	}
	getSym := func() (intern.Sym, error) {
		i, err := getU()
		if err != nil {
			return 0, err
		}
		if i >= uint64(len(syms)) {
			return 0, fmt.Errorf("expdb: string ref %d out of range", i)
		}
		return syms[i], nil
	}
	getS := func() (string, error) {
		y, err := getSym()
		return y.String(), err
	}

	e := &Experiment{}
	if e.Program, err = getS(); err != nil {
		return nil, err
	}
	ranks, err := getU()
	if err != nil {
		return nil, err
	}
	if ranks > math.MaxInt32 {
		return nil, fmt.Errorf("expdb: implausible rank count %d", ranks)
	}
	e.NRanks = int(ranks)

	nm, err := getU()
	if err != nil {
		return nil, err
	}
	if nm > 4096 {
		return nil, fmt.Errorf("expdb: implausible metric count %d", nm)
	}
	descs := make([]metricDesc, nm)
	kindNames := []string{"raw", "derived", "summary", "computed"}
	opNames := []string{"", "sum", "mean", "min", "max", "stddev"}
	for i := range descs {
		d := &descs[i]
		if d.Name, err = getS(); err != nil {
			return nil, err
		}
		if d.Unit, err = getS(); err != nil {
			return nil, err
		}
		kb, err := getU()
		if err != nil {
			return nil, err
		}
		if kb >= uint64(len(kindNames)) {
			return nil, fmt.Errorf("expdb: bad kind byte %d", kb)
		}
		d.Kind = kindNames[kb]
		if d.Period, err = getU(); err != nil {
			return nil, err
		}
		if d.Formula, err = getS(); err != nil {
			return nil, err
		}
		ob, err := getU()
		if err != nil {
			return nil, err
		}
		if ob >= uint64(len(opNames)) {
			return nil, fmt.Errorf("expdb: bad op byte %d", ob)
		}
		d.Op = opNames[ob]
		src, err := getU()
		if err != nil {
			return nil, err
		}
		d.Source = int(src)
	}
	reg, err := rebuildRegistry(descs)
	if err != nil {
		return nil, err
	}
	e.Tree = core.NewTree(e.Program, reg)
	inclOv := map[*core.Node][]colVal{}
	exclOv := map[*core.Node][]colVal{}

	var readNode func(parent *core.Node, depth int) error
	readNode = func(parent *core.Node, depth int) error {
		if depth > 100000 {
			return fmt.Errorf("expdb: tree too deep")
		}
		kindU, err := getU()
		if err != nil {
			return err
		}
		if kindU == uint64(core.KindRoot) || kindU > uint64(core.KindCallSite) {
			return fmt.Errorf("expdb: bad node kind %d", kindU)
		}
		var key core.Key
		key.Kind = core.Kind(kindU)
		if key.Name, err = getSym(); err != nil {
			return err
		}
		if key.File, err = getSym(); err != nil {
			return err
		}
		line, err := getU()
		if err != nil {
			return err
		}
		key.Line = int(line)
		if key.ID, err = getU(); err != nil {
			return err
		}
		callLine, err := getU()
		if err != nil {
			return err
		}
		callFile, err := getSym()
		if err != nil {
			return err
		}
		mod, err := getSym()
		if err != nil {
			return err
		}
		flags, err := getU()
		if err != nil {
			return err
		}
		n := parent.Child(key, true)
		n.CallLine = int(callLine)
		n.CallFile = callFile
		n.Mod = mod
		n.NoSource = flags&1 != 0

		nb, err := getU()
		if err != nil {
			return err
		}
		if nb > 0 && nb <= 1<<16 {
			n.Base.Grow(int(nb))
		}
		for i := uint64(0); i < nb; i++ {
			col, err := getU()
			if err != nil {
				return err
			}
			v, err := getF()
			if err != nil {
				return err
			}
			n.Base.Add(int(col), v)
		}
		for _, dest := range []map[*core.Node][]colVal{inclOv, exclOv} {
			ns, err := getU()
			if err != nil {
				return err
			}
			for i := uint64(0); i < ns; i++ {
				col, err := getU()
				if err != nil {
					return err
				}
				v, err := getF()
				if err != nil {
					return err
				}
				dest[n] = append(dest[n], colVal{col: int(col), val: v})
			}
		}
		nc, err := getU()
		if err != nil {
			return err
		}
		for i := uint64(0); i < nc; i++ {
			if err := readNode(n, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	nRoots, err := getU()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nRoots; i++ {
		if err := readNode(e.Tree.Root, 0); err != nil {
			return nil, err
		}
	}
	if err := e.finalize(inclOv, exclOv); err != nil {
		return nil, err
	}
	return e, nil
}
