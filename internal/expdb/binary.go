package expdb

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/framing"
	"repro/internal/ingest"
	"repro/internal/intern"
)

// Compact binary database formats.
//
// v1 ("CPDB1") is a bare varint stream:
//
//	magic "CPDB1"
//	nStrings, strings (uvarint len + bytes)   -- string table
//	programRef, ranks
//	nMetrics { nameRef unitRef kindByte period formulaRef opByte src }
//	node := kindByte nameRef fileRef line id callLine callFileRef modRef
//	        flags
//	        nBase   { col, float64bits }*
//	        nIncl   { col, float64bits }*     -- override lists inline
//	        nExcl   { col, float64bits }*
//	        nChildren node*
//
// v2 ("CPDB2") wraps the same encodings in the checksummed section
// container of internal/framing:
//
//	magic "CPDB2"
//	section 1 (strings):    nStrings, strings
//	section 2 (header):     programRef, ranks
//	section 3 (metrics):    nMetrics { ... as v1 ... }
//	section 4 (tree):       nRoots, preorder nodes WITHOUT override lists
//	section 5 (overrides):  nEntries { nodeIdx, nIncl {col,f64}*, nExcl {col,f64}* }
//	section 6 (provenance): attempted, merged, nBad { path, rank+1, offset+1, class, message }
//	end marker
//
// Sections 1-4 are required: damage to any of them is fatal (SectionError).
// Sections 5 and 6 are optional refinements — a failed checksum there
// degrades the open (the drop is recorded in Experiment.Notes) instead of
// losing the whole database. Node indexes in section 5 are preorder
// positions in section 4's node stream.
//
// All integers are uvarints except float64 payloads (fixed 8 bytes LE).
// Strings are interned: names, files and modules repeat across thousands
// of scopes, which is the main reason this format is much smaller than the
// XML (Section IX's motivation).

const (
	dbMagic   = "CPDB1"
	dbMagicV2 = "CPDB2"
)

// v2 section ids.
const (
	dbSecStrings    byte = 1
	dbSecHeader     byte = 2
	dbSecMetrics    byte = 3
	dbSecTree       byte = 4
	dbSecOverrides  byte = 5
	dbSecProvenance byte = 6
)

func sectionName(id byte) string {
	switch id {
	case dbSecStrings:
		return "strings"
	case dbSecHeader:
		return "header"
	case dbSecMetrics:
		return "metrics"
	case dbSecTree:
		return "tree"
	case dbSecOverrides:
		return "overrides"
	case dbSecProvenance:
		return "provenance"
	case dbSecTrace:
		return "trace"
	case dbSecPyramid:
		return "pyramid"
	case dbSecTraceMeta:
		return "tracemeta"
	}
	return "framing"
}

type strTable struct {
	byVal map[string]uint64
	bySym map[intern.Sym]uint64
	vals  []string
}

func newStrTable() *strTable {
	t := &strTable{byVal: map[string]uint64{}, bySym: map[intern.Sym]uint64{}}
	t.ref("") // index 0 is always the empty string
	return t
}

func (t *strTable) ref(s string) uint64 {
	if i, ok := t.byVal[s]; ok {
		return i
	}
	i := uint64(len(t.vals))
	t.byVal[s] = i
	t.vals = append(t.vals, s)
	return i
}

// refSym references an interned symbol's string. The sym-keyed cache makes
// the per-node path a single integer map probe; misses delegate to ref, so
// table construction order — and hence the output bytes — are exactly those
// of the string-keyed writer.
func (t *strTable) refSym(y intern.Sym) uint64 {
	if i, ok := t.bySym[y]; ok {
		return i
	}
	i := t.ref(y.String())
	t.bySym[y] = i
	return i
}

// intern runs the shared pass 1: every string the experiment will
// reference goes into the table, in a deterministic order.
func (e *Experiment) internStrings(tab *strTable) {
	tab.ref(e.Program)
	for _, d := range descsOf(e.Tree.Reg) {
		tab.ref(d.Name)
		tab.ref(d.Unit)
		tab.ref(d.Formula)
	}
	core.Walk(e.Tree.Root, func(n *core.Node) bool {
		tab.refSym(n.Name)
		tab.refSym(n.File)
		tab.refSym(n.CallFile)
		tab.refSym(n.Mod)
		return true
	})
}

func kindByteOf(kind string) (uint64, error) {
	switch kind {
	case "raw":
		return 0, nil
	case "derived":
		return 1, nil
	case "summary":
		return 2, nil
	case "computed":
		return 3, nil
	}
	return 0, fmt.Errorf("expdb: unknown kind %q", kind)
}

func opByteOf(op string) (uint64, error) {
	switch op {
	case "":
		return 0, nil
	case "sum":
		return 1, nil
	case "mean":
		return 2, nil
	case "min":
		return 3, nil
	case "max":
		return 4, nil
	case "stddev":
		return 5, nil
	}
	return 0, fmt.Errorf("expdb: unknown op %q", op)
}

var (
	kindNames = []string{"raw", "derived", "summary", "computed"}
	opNames   = []string{"", "sum", "mean", "min", "max", "stddev"}
)

// Buffer-backed encoding helpers for the v2 sections (bytes.Buffer writes
// cannot fail).

func bufU(b *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	b.Write(tmp[:n])
}

func bufF(b *bytes.Buffer, v float64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
	b.Write(tmp[:])
}

func bufS(b *bytes.Buffer, s string) {
	bufU(b, uint64(len(s)))
	b.WriteString(s)
}

// WriteBinary serializes the experiment in the current (v2, checksummed)
// format.
func (e *Experiment) WriteBinary(w io.Writer) error {
	tab := newStrTable()
	e.internStrings(tab)

	var strs bytes.Buffer
	bufU(&strs, uint64(len(tab.vals)))
	for _, s := range tab.vals {
		bufS(&strs, s)
	}

	var hdr bytes.Buffer
	bufU(&hdr, tab.ref(e.Program))
	bufU(&hdr, uint64(e.NRanks))

	metricsPayload, err := e.encodeMetrics(tab)
	if err != nil {
		return err
	}
	treePayload, ovs := e.encodeTree(tab)

	fw, err := framing.NewWriter(w, dbMagicV2)
	if err != nil {
		return err
	}
	for _, sec := range []struct {
		id      byte
		payload []byte
	}{
		{dbSecStrings, strs.Bytes()},
		{dbSecHeader, hdr.Bytes()},
		{dbSecMetrics, metricsPayload},
		{dbSecTree, treePayload},
	} {
		if err := fw.Section(sec.id, sec.payload); err != nil {
			return err
		}
	}
	if len(ovs) > 0 {
		if err := fw.Section(dbSecOverrides, encodeOverrides(ovs)); err != nil {
			return err
		}
	}
	if e.Provenance != nil {
		if err := fw.Section(dbSecProvenance, encodeProvenance(e.Provenance)); err != nil {
			return err
		}
	}
	return fw.Close()
}

func (e *Experiment) encodeMetrics(tab *strTable) ([]byte, error) {
	descs := descsOf(e.Tree.Reg)
	var b bytes.Buffer
	bufU(&b, uint64(len(descs)))
	for _, d := range descs {
		kb, err := kindByteOf(d.Kind)
		if err != nil {
			return nil, err
		}
		ob, err := opByteOf(d.Op)
		if err != nil {
			return nil, err
		}
		for _, v := range []uint64{tab.ref(d.Name), tab.ref(d.Unit), kb, d.Period, tab.ref(d.Formula), ob, uint64(d.Source)} {
			bufU(&b, v)
		}
	}
	return b.Bytes(), nil
}

// ovEntry is one node's override values, keyed by the node's preorder
// position in the tree section.
type ovEntry struct {
	idx  uint64
	incl []colVal
	excl []colVal
}

// encodeTree emits the preorder node stream (no override lists) and
// collects the overrides keyed by preorder index for section 5.
func (e *Experiment) encodeTree(tab *strTable) ([]byte, []ovEntry) {
	inclCols, exclCols := overrideCols(e.Tree.Reg)
	var b bytes.Buffer
	var ovs []ovEntry
	idx := uint64(0)
	var walk func(n *core.Node)
	walk = func(n *core.Node) {
		myIdx := idx
		idx++
		flags := uint64(0)
		if n.NoSource {
			flags |= 1
		}
		for _, v := range []uint64{
			uint64(n.Kind),
			tab.refSym(n.Name), tab.refSym(n.File), uint64(n.Line), n.ID,
			uint64(n.CallLine), tab.refSym(n.CallFile), tab.refSym(n.Mod),
			flags,
		} {
			bufU(&b, v)
		}
		bufU(&b, uint64(n.Base.Len()))
		n.Base.Range(func(id int, v float64) {
			bufU(&b, uint64(id))
			bufF(&b, v)
		})
		incl := overrideValues(&n.Incl, inclCols)
		excl := overrideValues(&n.Excl, exclCols)
		if len(incl)+len(excl) > 0 {
			ovs = append(ovs, ovEntry{idx: myIdx, incl: incl, excl: excl})
		}
		bufU(&b, uint64(len(n.Children)))
		for _, c := range n.Children {
			walk(c)
		}
	}
	bufU(&b, uint64(len(e.Tree.Root.Children)))
	for _, c := range e.Tree.Root.Children {
		walk(c)
	}
	// The root never appears in the node stream, so its overrides ride in
	// section 5 under the sentinel index one past the last preorder node.
	incl := overrideValues(&e.Tree.Root.Incl, inclCols)
	excl := overrideValues(&e.Tree.Root.Excl, exclCols)
	if len(incl)+len(excl) > 0 {
		ovs = append(ovs, ovEntry{idx: idx, incl: incl, excl: excl})
	}
	return b.Bytes(), ovs
}

func encodeOverrides(ovs []ovEntry) []byte {
	var b bytes.Buffer
	bufU(&b, uint64(len(ovs)))
	for _, ov := range ovs {
		bufU(&b, ov.idx)
		for _, vals := range [][]colVal{ov.incl, ov.excl} {
			bufU(&b, uint64(len(vals)))
			for _, cv := range vals {
				bufU(&b, uint64(cv.col))
				bufF(&b, cv.val)
			}
		}
	}
	return b.Bytes()
}

func encodeProvenance(rep *ingest.Report) []byte {
	var b bytes.Buffer
	bufU(&b, uint64(rep.Attempted))
	bufU(&b, uint64(rep.Merged))
	bufU(&b, uint64(len(rep.Bad)))
	for _, bad := range rep.Bad {
		bufS(&b, bad.Path)
		bufU(&b, uint64(bad.Rank+1))   // 0 encodes "unknown" (-1)
		bufU(&b, uint64(bad.Offset+1)) // likewise
		bufU(&b, uint64(bad.Class))
		bufS(&b, bad.Message)
	}
	return b.Bytes()
}

// WriteBinaryV1 serializes the experiment in the legacy unchecksummed v1
// format, kept for compatibility tests and old-format consumers. It does
// not carry provenance.
func (e *Experiment) WriteBinaryV1(w io.Writer) error {
	tab := newStrTable()
	e.internStrings(tab)

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(dbMagic); err != nil {
		return err
	}
	putU := func(v uint64) error {
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putF := func(v float64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		_, err := bw.Write(buf[:])
		return err
	}
	if err := putU(uint64(len(tab.vals))); err != nil {
		return err
	}
	for _, s := range tab.vals {
		if err := putU(uint64(len(s))); err != nil {
			return err
		}
		if _, err := bw.WriteString(s); err != nil {
			return err
		}
	}
	if err := putU(tab.ref(e.Program)); err != nil {
		return err
	}
	if err := putU(uint64(e.NRanks)); err != nil {
		return err
	}
	descs := descsOf(e.Tree.Reg)
	if err := putU(uint64(len(descs))); err != nil {
		return err
	}
	for _, d := range descs {
		kb, err := kindByteOf(d.Kind)
		if err != nil {
			return err
		}
		ob, err := opByteOf(d.Op)
		if err != nil {
			return err
		}
		for _, v := range []uint64{tab.ref(d.Name), tab.ref(d.Unit), kb, d.Period, tab.ref(d.Formula), ob, uint64(d.Source)} {
			if err := putU(v); err != nil {
				return err
			}
		}
	}

	inclOv, exclOv := overrideCols(e.Tree.Reg)
	var writeNode func(n *core.Node) error
	writeNode = func(n *core.Node) error {
		flags := uint64(0)
		if n.NoSource {
			flags |= 1
		}
		hdr := []uint64{
			uint64(n.Kind),
			tab.refSym(n.Name), tab.refSym(n.File), uint64(n.Line), n.ID,
			uint64(n.CallLine), tab.refSym(n.CallFile), tab.refSym(n.Mod),
			flags,
		}
		for _, v := range hdr {
			if err := putU(v); err != nil {
				return err
			}
		}
		var verr error
		if err := putU(uint64(n.Base.Len())); err != nil {
			return err
		}
		n.Base.Range(func(id int, v float64) {
			if verr != nil {
				return
			}
			if verr = putU(uint64(id)); verr == nil {
				verr = putF(v)
			}
		})
		if verr != nil {
			return verr
		}
		for _, ov := range [][]colVal{overrideValues(&n.Incl, inclOv), overrideValues(&n.Excl, exclOv)} {
			if err := putU(uint64(len(ov))); err != nil {
				return err
			}
			for _, cv := range ov {
				if err := putU(uint64(cv.col)); err != nil {
					return err
				}
				if err := putF(cv.val); err != nil {
					return err
				}
			}
		}
		if err := putU(uint64(len(n.Children))); err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := writeNode(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := putU(uint64(len(e.Tree.Root.Children))); err != nil {
		return err
	}
	for _, c := range e.Tree.Root.Children {
		if err := writeNode(c); err != nil {
			return err
		}
	}
	// Optional trailer: the root's own overrides, which the per-node
	// stream above cannot carry. Omitted when empty so files from trees
	// without root overrides stay byte-identical to the original format;
	// the reader treats EOF here as "no trailer".
	rootIncl := overrideValues(&e.Tree.Root.Incl, inclOv)
	rootExcl := overrideValues(&e.Tree.Root.Excl, exclOv)
	if len(rootIncl)+len(rootExcl) > 0 {
		for _, ov := range [][]colVal{rootIncl, rootExcl} {
			if err := putU(uint64(len(ov))); err != nil {
				return err
			}
			for _, cv := range ov {
				if err := putU(uint64(cv.col)); err != nil {
					return err
				}
				if err := putF(cv.val); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// Read opens a database in any supported format — binary v1, binary v2 or
// XML — sniffing the leading bytes.
func Read(r io.Reader) (*Experiment, error) {
	size := framing.SizeOf(r)
	br := bufio.NewReader(r)
	head, err := br.Peek(len(dbMagic))
	if err != nil && len(head) == 0 {
		return nil, fmt.Errorf("expdb: %w", noEOF(err))
	}
	switch string(head) {
	case dbMagic:
		return readBinaryV1(br, size)
	case dbMagicV2:
		return readBinaryV2(br, size)
	case dbMagicV3:
		return readBinaryV3(br)
	default:
		return ReadXML(br)
	}
}

// ReadBinary deserializes either compact format (sniffing the magic) and
// recomputes presented metrics.
func ReadBinary(r io.Reader) (*Experiment, error) {
	size := framing.SizeOf(r)
	br := bufio.NewReader(r)
	head, err := br.Peek(len(dbMagic))
	if err != nil {
		return nil, fmt.Errorf("expdb: %w", noEOF(err))
	}
	switch string(head) {
	case dbMagic:
		return readBinaryV1(br, size)
	case dbMagicV2:
		return readBinaryV2(br, size)
	case dbMagicV3:
		return readBinaryV3(br)
	default:
		return nil, fmt.Errorf("expdb: bad magic %q", head)
	}
}

// noEOF upgrades a bare io.EOF to io.ErrUnexpectedEOF: a database is never
// legitimately empty mid-structure.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

func getU(br *bufio.Reader) (uint64, error) { return binary.ReadUvarint(br) }

func getF(br *bufio.Reader) (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

// maxV1Bound is the remaining-input stand-in when the source size is
// unknown (a pure stream): counts then fall back to the fixed caps only.
const maxV1Bound = int64(1) << 62

// readBinaryV1 parses the legacy format. size is the total input length
// including the magic, or -1 when unknown; every count-driven allocation
// is bounded by the bytes actually remaining, so a lying count in a tiny
// file errors out instead of allocating gigabytes.
func readBinaryV1(br *bufio.Reader, size int64) (*Experiment, error) {
	// bufio hides how much of the source was consumed; count the bytes
	// flowing out of br instead (cbr's look-ahead is added back).
	count := &ingest.CountReader{R: br}
	cbr := bufio.NewReader(count)
	remaining := func() int64 {
		if size < 0 {
			return maxV1Bound
		}
		rem := size - count.N + int64(cbr.Buffered())
		if rem < 0 {
			return 0
		}
		return rem
	}

	magic := make([]byte, len(dbMagic))
	if _, err := io.ReadFull(cbr, magic); err != nil {
		return nil, fmt.Errorf("expdb: %w", err)
	}
	if string(magic) != dbMagic {
		return nil, fmt.Errorf("expdb: bad magic %q", magic)
	}

	nStr, err := getU(cbr)
	if err != nil {
		return nil, err
	}
	if nStr > 10_000_000 || int64(nStr) > remaining() {
		return nil, fmt.Errorf("expdb: implausible string count %d", nStr)
	}
	syms, err := readStrTable(cbr, nStr, remaining)
	if err != nil {
		return nil, err
	}
	getSym := func() (intern.Sym, error) {
		i, err := getU(cbr)
		if err != nil {
			return 0, err
		}
		if i >= uint64(len(syms)) {
			return 0, fmt.Errorf("expdb: string ref %d out of range", i)
		}
		return syms[i], nil
	}
	getS := func() (string, error) {
		y, err := getSym()
		return y.String(), err
	}

	e := &Experiment{}
	if e.Program, err = getS(); err != nil {
		return nil, err
	}
	ranks, err := getU(cbr)
	if err != nil {
		return nil, err
	}
	if ranks > math.MaxInt32 {
		return nil, fmt.Errorf("expdb: implausible rank count %d", ranks)
	}
	e.NRanks = int(ranks)

	descs, err := readMetricDescs(cbr, getS, remaining)
	if err != nil {
		return nil, err
	}
	reg, err := rebuildRegistry(descs)
	if err != nil {
		return nil, err
	}
	e.Tree = core.NewTree(e.Program, reg)
	inclOv := map[*core.Node][]colVal{}
	exclOv := map[*core.Node][]colVal{}

	var readNode func(parent *core.Node, depth int) error
	readNode = func(parent *core.Node, depth int) error {
		if depth > 100000 {
			return fmt.Errorf("expdb: tree too deep")
		}
		n, err := readNodeHeader(cbr, parent, getSym)
		if err != nil {
			return err
		}
		if err := readBaseValues(cbr, n, remaining); err != nil {
			return err
		}
		for _, dest := range []map[*core.Node][]colVal{inclOv, exclOv} {
			ns, err := getU(cbr)
			if err != nil {
				return err
			}
			// Each override entry is at least 9 bytes (col + f64).
			if int64(ns) > remaining()/9+1 {
				return fmt.Errorf("expdb: implausible override count %d", ns)
			}
			for i := uint64(0); i < ns; i++ {
				col, err := getU(cbr)
				if err != nil {
					return err
				}
				v, err := getF(cbr)
				if err != nil {
					return err
				}
				dest[n] = append(dest[n], colVal{col: int(col), val: v})
			}
		}
		nc, err := getU(cbr)
		if err != nil {
			return err
		}
		if int64(nc) > remaining() {
			return fmt.Errorf("expdb: implausible child count %d", nc)
		}
		for i := uint64(0); i < nc; i++ {
			if err := readNode(n, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	nRoots, err := getU(cbr)
	if err != nil {
		return nil, err
	}
	if int64(nRoots) > remaining() {
		return nil, fmt.Errorf("expdb: implausible root count %d", nRoots)
	}
	for i := uint64(0); i < nRoots; i++ {
		if err := readNode(e.Tree.Root, 0); err != nil {
			return nil, err
		}
	}
	// Optional root-override trailer; absent in files written before it
	// existed, so EOF on its first varint means "no trailer".
	for di, dest := range []map[*core.Node][]colVal{inclOv, exclOv} {
		ns, err := getU(cbr)
		if err != nil {
			if di == 0 && err == io.EOF {
				break
			}
			return nil, noEOF(err)
		}
		if int64(ns) > remaining()/9+1 {
			return nil, fmt.Errorf("expdb: implausible override count %d", ns)
		}
		for i := uint64(0); i < ns; i++ {
			col, err := getU(cbr)
			if err != nil {
				return nil, noEOF(err)
			}
			v, err := getF(cbr)
			if err != nil {
				return nil, noEOF(err)
			}
			dest[e.Tree.Root] = append(dest[e.Tree.Root], colVal{col: int(col), val: v})
		}
	}
	if err := e.finalize(inclOv, exclOv); err != nil {
		return nil, err
	}
	return e, nil
}

// readStrTable reads nStr strings, bounded by the remaining input: the
// table grows with the data actually present, so the initial allocation
// never trusts the count. Each distinct string is interned exactly once
// per load through a reused read buffer — intern.B probes without copying
// and only a first-ever-seen string is materialized on the heap.
func readStrTable(br *bufio.Reader, nStr uint64, remaining func() int64) ([]intern.Sym, error) {
	initCap := nStr
	if initCap > 4096 {
		initCap = 4096
	}
	syms := make([]intern.Sym, 0, initCap)
	var sbuf []byte
	for i := uint64(0); i < nStr; i++ {
		l, err := getU(br)
		if err != nil {
			return nil, noEOF(err)
		}
		if l > 1<<20 || int64(l) > remaining() {
			return nil, fmt.Errorf("expdb: implausible string length %d", l)
		}
		if uint64(cap(sbuf)) < l {
			sbuf = make([]byte, l)
		}
		b := sbuf[:l]
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, err
		}
		syms = append(syms, intern.B(b))
	}
	return syms, nil
}

// readMetricDescs reads the metric descriptor block shared by both
// versions.
func readMetricDescs(br *bufio.Reader, getS func() (string, error), remaining func() int64) ([]metricDesc, error) {
	nm, err := getU(br)
	if err != nil {
		return nil, noEOF(err)
	}
	// Each descriptor is at least 7 bytes.
	if nm > 4096 || int64(nm) > remaining()/7+1 {
		return nil, fmt.Errorf("expdb: implausible metric count %d", nm)
	}
	descs := make([]metricDesc, nm)
	for i := range descs {
		d := &descs[i]
		if d.Name, err = getS(); err != nil {
			return nil, err
		}
		if d.Unit, err = getS(); err != nil {
			return nil, err
		}
		kb, err := getU(br)
		if err != nil {
			return nil, err
		}
		if kb >= uint64(len(kindNames)) {
			return nil, fmt.Errorf("expdb: bad kind byte %d", kb)
		}
		d.Kind = kindNames[kb]
		if d.Period, err = getU(br); err != nil {
			return nil, err
		}
		if d.Formula, err = getS(); err != nil {
			return nil, err
		}
		ob, err := getU(br)
		if err != nil {
			return nil, err
		}
		if ob >= uint64(len(opNames)) {
			return nil, fmt.Errorf("expdb: bad op byte %d", ob)
		}
		d.Op = opNames[ob]
		src, err := getU(br)
		if err != nil {
			return nil, err
		}
		d.Source = int(src)
	}
	return descs, nil
}

// readNodeHeader reads one node's fixed fields and attaches it under
// parent.
func readNodeHeader(br *bufio.Reader, parent *core.Node, getSym func() (intern.Sym, error)) (*core.Node, error) {
	kindU, err := getU(br)
	if err != nil {
		return nil, noEOF(err)
	}
	if kindU == uint64(core.KindRoot) || kindU > uint64(core.KindCallSite) {
		return nil, fmt.Errorf("expdb: bad node kind %d", kindU)
	}
	var key core.Key
	key.Kind = core.Kind(kindU)
	if key.Name, err = getSym(); err != nil {
		return nil, err
	}
	if key.File, err = getSym(); err != nil {
		return nil, err
	}
	line, err := getU(br)
	if err != nil {
		return nil, err
	}
	key.Line = int(line)
	if key.ID, err = getU(br); err != nil {
		return nil, err
	}
	callLine, err := getU(br)
	if err != nil {
		return nil, err
	}
	callFile, err := getSym()
	if err != nil {
		return nil, err
	}
	mod, err := getSym()
	if err != nil {
		return nil, err
	}
	flags, err := getU(br)
	if err != nil {
		return nil, err
	}
	n := parent.Child(key, true)
	n.CallLine = int(callLine)
	n.CallFile = callFile
	n.Mod = mod
	n.NoSource = flags&1 != 0
	return n, nil
}

// readBaseValues reads one node's directly attributed costs.
func readBaseValues(br *bufio.Reader, n *core.Node, remaining func() int64) error {
	nb, err := getU(br)
	if err != nil {
		return err
	}
	// Each base entry is at least 9 bytes (col + f64).
	if int64(nb) > remaining()/9+1 {
		return fmt.Errorf("expdb: implausible base count %d", nb)
	}
	if nb > 0 && nb <= 1<<16 {
		n.Base.Grow(int(nb))
	}
	for i := uint64(0); i < nb; i++ {
		col, err := getU(br)
		if err != nil {
			return err
		}
		v, err := getF(br)
		if err != nil {
			return err
		}
		n.Base.Add(int(col), v)
	}
	return nil
}

// readBinaryV2 parses the framed format by running the lazy open and
// immediately materializing every retained section, so the eager and lazy
// paths cannot diverge. Required sections (strings, header, metrics, tree)
// fail the open on any damage; optional sections (overrides, provenance)
// degrade: a failed checksum drops the section and records the loss in
// Experiment.Notes.
func readBinaryV2(br *bufio.Reader, size int64) (*Experiment, error) {
	db, err := openLazyV2(br, size)
	if err != nil {
		return nil, err
	}
	if err := db.MaterializeAll(); err != nil {
		return nil, err
	}
	return db.exp, nil
}

// readTreeSection parses section 4's preorder node stream, returning the
// nodes in preorder so section 5 can reference them by index.
func readTreeSection(br *bufio.Reader, e *Experiment, syms []intern.Sym, remaining func() int64) ([]*core.Node, error) {
	getSym := func() (intern.Sym, error) {
		i, err := getU(br)
		if err != nil {
			return 0, err
		}
		if i >= uint64(len(syms)) {
			return 0, fmt.Errorf("expdb: string ref %d out of range", i)
		}
		return syms[i], nil
	}
	var nodes []*core.Node
	var readNode func(parent *core.Node, depth int) error
	readNode = func(parent *core.Node, depth int) error {
		if depth > 100000 {
			return fmt.Errorf("expdb: tree too deep")
		}
		n, err := readNodeHeader(br, parent, getSym)
		if err != nil {
			return err
		}
		nodes = append(nodes, n)
		if err := readBaseValues(br, n, remaining); err != nil {
			return err
		}
		nc, err := getU(br)
		if err != nil {
			return err
		}
		if int64(nc) > remaining() {
			return fmt.Errorf("expdb: implausible child count %d", nc)
		}
		for i := uint64(0); i < nc; i++ {
			if err := readNode(n, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	nRoots, err := getU(br)
	if err != nil {
		return nil, noEOF(err)
	}
	if int64(nRoots) > remaining() {
		return nil, fmt.Errorf("expdb: implausible root count %d", nRoots)
	}
	for i := uint64(0); i < nRoots; i++ {
		if err := readNode(e.Tree.Root, 0); err != nil {
			return nil, err
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("expdb: trailing bytes in tree section")
	}
	return nodes, nil
}

func readOverridesSection(br *bufio.Reader, root *core.Node, nodes []*core.Node, inclOv, exclOv map[*core.Node][]colVal, remaining func() int64) error {
	nEntries, err := getU(br)
	if err != nil {
		return noEOF(err)
	}
	if int64(nEntries) > remaining() {
		return fmt.Errorf("expdb: implausible override entry count %d", nEntries)
	}
	for i := uint64(0); i < nEntries; i++ {
		idx, err := getU(br)
		if err != nil {
			return noEOF(err)
		}
		if idx > uint64(len(nodes)) {
			return fmt.Errorf("expdb: override node index %d out of range", idx)
		}
		// The index one past the last preorder node addresses the root,
		// which has no entry of its own in the tree section.
		n := root
		if idx < uint64(len(nodes)) {
			n = nodes[idx]
		}
		for _, dest := range []map[*core.Node][]colVal{inclOv, exclOv} {
			ns, err := getU(br)
			if err != nil {
				return noEOF(err)
			}
			if int64(ns) > remaining()/9+1 {
				return fmt.Errorf("expdb: implausible override count %d", ns)
			}
			for j := uint64(0); j < ns; j++ {
				col, err := getU(br)
				if err != nil {
					return noEOF(err)
				}
				v, err := getF(br)
				if err != nil {
					return noEOF(err)
				}
				dest[n] = append(dest[n], colVal{col: int(col), val: v})
			}
		}
	}
	return nil
}

func readProvenanceSection(br *bufio.Reader, remaining func() int64) (*ingest.Report, error) {
	attempted, err := getU(br)
	if err != nil {
		return nil, noEOF(err)
	}
	merged, err := getU(br)
	if err != nil {
		return nil, noEOF(err)
	}
	if attempted > math.MaxInt32 || merged > math.MaxInt32 {
		return nil, fmt.Errorf("expdb: implausible provenance counts %d/%d", merged, attempted)
	}
	nBad, err := getU(br)
	if err != nil {
		return nil, noEOF(err)
	}
	if int64(nBad) > remaining()/5+1 {
		return nil, fmt.Errorf("expdb: implausible quarantine count %d", nBad)
	}
	rep := &ingest.Report{Attempted: int(attempted), Merged: int(merged)}
	readStr := func() (string, error) {
		l, err := getU(br)
		if err != nil {
			return "", noEOF(err)
		}
		if l > 1<<20 || int64(l) > remaining() {
			return "", fmt.Errorf("expdb: implausible string length %d", l)
		}
		b := make([]byte, l)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	for i := uint64(0); i < nBad; i++ {
		var bad ingest.BadRank
		if bad.Path, err = readStr(); err != nil {
			return nil, err
		}
		rank, err := getU(br)
		if err != nil {
			return nil, noEOF(err)
		}
		if rank > math.MaxInt32 {
			return nil, fmt.Errorf("expdb: implausible quarantined rank %d", rank)
		}
		bad.Rank = int(rank) - 1
		off, err := getU(br)
		if err != nil {
			return nil, noEOF(err)
		}
		bad.Offset = int64(off) - 1
		cls, err := getU(br)
		if err != nil {
			return nil, noEOF(err)
		}
		if cls > uint64(ingest.ClassInternal) {
			return nil, fmt.Errorf("expdb: bad error class %d", cls)
		}
		bad.Class = ingest.Class(cls)
		if bad.Message, err = readStr(); err != nil {
			return nil, err
		}
		rep.Bad = append(rep.Bad, bad)
	}
	return rep, nil
}
