package expdb

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/lower"
	"repro/internal/merge"
	"repro/internal/mpi"
	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/sampler"
	"repro/internal/sim"
	"repro/internal/structfile"
	"repro/internal/trace"
)

// traceFixture runs a small program with trace capture on and returns an
// experiment with TraceRanks installed, plus the inputs that built it.
func traceFixture(t testing.TB, nranks, jobs int) (*Experiment, *structfile.Doc, []*profile.Profile) {
	t.Helper()
	p := prog.NewBuilder("trfix").
		File("a.c").
		Proc("kernel", 10,
			prog.L(11, 40, prog.Wc(12, prog.Cost{Cycles: 25, FLOPs: 10, L1Miss: 2, Instr: 20}))).
		Proc("main", 1,
			prog.C(2, "kernel"),
			prog.Sync(3)).
		Entry("main").MustBuild()
	im, err := lower.Lower(p, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	profs, err := mpi.Run(im, mpi.Config{
		NRanks: nranks,
		Events: []sampler.EventConfig{{Event: sim.EvCycles, Period: 40}},
		Trace:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := merge.ProfilesJobs(doc, profs, jobs)
	if err != nil {
		t.Fatal(err)
	}
	e := FromMerge(res)
	if err := TraceRanksFromProfiles(e, doc, profs); err != nil {
		t.Fatal(err)
	}
	return e, doc, profs
}

func TestTraceRoundTrip(t *testing.T) {
	e, _, profs := traceFixture(t, 3, 1)
	if len(e.TraceRanks) != 3 {
		t.Fatalf("TraceRanks = %d, want 3", len(e.TraceRanks))
	}

	db, err := OpenMapped(v3File(t, v3Bytes(t, e)))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	tv, err := db.Trace()
	if err != nil {
		t.Fatal(err)
	}
	ranks := tv.TraceRanks()
	if len(ranks) != 3 {
		t.Fatalf("trace ranks = %v, want 3 ranks", ranks)
	}
	exp, err := db.Experiment()
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Notes) != 0 {
		t.Fatalf("unexpected notes: %v", exp.Notes)
	}

	for i, rank := range ranks {
		m, ok := tv.TraceMeta(rank)
		if !ok {
			t.Fatalf("no meta for rank %d", rank)
		}
		src := profs[i].Trace
		if m.Count != src.Count() || m.LastT != src.LastT() {
			t.Fatalf("rank %d meta {%d,%d}, capture {%d,%d}",
				rank, m.Count, m.LastT, src.Count(), src.LastT())
		}
		recs := tv.Records(rank)
		if uint64(len(recs)) != m.Count {
			t.Fatalf("rank %d: %d records, meta count %d", rank, len(recs), m.Count)
		}
		// Every CPID is a live structural row of this tree.
		for _, r := range recs {
			if db.NodeAt(int(r.CPID)) == nil {
				t.Fatalf("rank %d: CPID %d resolves to no node", rank, r.CPID)
			}
		}
		// Level 0 holds exactly the events the records hold.
		var got uint64
		for _, b := range tv.TraceLevel(rank, 0) {
			got += uint64(b.Samples)
		}
		if got != m.Count {
			t.Fatalf("rank %d: level 0 holds %d samples, want %d", rank, got, m.Count)
		}
	}

	// A view over the whole span renders without error and is non-empty.
	g, err := trace.View(tv, 0, 0, nil, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, c := range g.Cells {
		if !c.Empty() {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("view over full span is entirely empty")
	}

	for _, key := range []string{"trace", "pyramid", "tracemeta"} {
		if db.SectionReads()[key] == 0 {
			t.Fatalf("no %q section reads recorded: %v", key, db.SectionReads())
		}
	}
}

// TestTraceJobsDeterminism locks the database bytes — trace sections
// included — to be independent of merge parallelism.
func TestTraceJobsDeterminism(t *testing.T) {
	e1, _, _ := traceFixture(t, 4, 1)
	e8, _, _ := traceFixture(t, 4, 8)
	if !bytes.Equal(v3Bytes(t, e1), v3Bytes(t, e8)) {
		t.Fatal("v3 bytes with traces differ between -jobs 1 and -jobs 8 merges")
	}
}

// TestTraceDamageDegrades flips bytes in each trace-related section kind
// and checks the database opens, profile views stay intact, and the
// damage is reported through Notes rather than an error.
func TestTraceDamageDegrades(t *testing.T) {
	e, _, _ := traceFixture(t, 3, 1)
	clean := v3Bytes(t, e)

	cases := []struct {
		name      string
		match     func(v3sec) bool
		wantRanks int
		wantNote  string
	}{
		{"trace", func(s v3sec) bool { return s.kind == dbSecTrace && s.col == 1 }, 2, "rank 1"},
		{"pyramid", func(s v3sec) bool { return s.kind == dbSecPyramid && s.col == 2 }, 2, "rank 2"},
		{"tracemeta", func(s v3sec) bool { return s.kind == dbSecTraceMeta }, 0, "tracemeta"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := v3CorruptSection(t, clean, tc.match)
			db, err := OpenMapped(v3File(t, data))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			tv, err := db.Trace()
			if err != nil {
				t.Fatalf("Trace() must degrade, got error %v", err)
			}
			if len(tv.TraceRanks()) != tc.wantRanks {
				t.Fatalf("ranks after damage = %v, want %d", tv.TraceRanks(), tc.wantRanks)
			}
			exp, err := db.Experiment()
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, n := range exp.Notes {
				if strings.Contains(n, tc.wantNote) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no note mentioning %q in %v", tc.wantNote, exp.Notes)
			}
			// Profile views are untouched: metrics still verify.
			if err := db.VerifyAll(); err != nil {
				t.Fatalf("profile sections damaged too: %v", err)
			}
			if _, err := trace.View(tv, 0, 0, nil, 16, 1); tc.wantRanks > 0 && err != nil {
				t.Fatalf("view over surviving ranks: %v", err)
			}
		})
	}
}

// TestTraceAbsentIsEmpty: a database without traces yields an empty view,
// no notes, no error.
func TestTraceAbsentIsEmpty(t *testing.T) {
	e := fixture(t)
	db, err := OpenMapped(v3File(t, v3Bytes(t, e)))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tv, err := db.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if len(tv.TraceRanks()) != 0 {
		t.Fatalf("ranks = %v, want none", tv.TraceRanks())
	}
	if _, err := trace.View(tv, 0, 0, nil, 16, 1); err == nil {
		t.Fatal("View over empty trace view must error")
	}
}

// TestWriteTraceSectionsValidation: the writer refuses sources that lie
// about their geometry.
func TestWriteTraceSectionsValidation(t *testing.T) {
	e, _, _ := traceFixture(t, 1, 1)
	good := e.TraceRanks[0]

	bad := []struct {
		name string
		tr   TraceRank
	}{
		{"short", TraceRank{Rank: 0, Count: good.Count + 5, LastT: good.LastT, Scan: good.Scan}},
		{"long", TraceRank{Rank: 0, Count: good.Count - 1, LastT: good.LastT, Scan: good.Scan}},
		{"lastT", TraceRank{Rank: 0, Count: good.Count, LastT: good.LastT + 7, Scan: good.Scan}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			e.TraceRanks = []TraceRank{tc.tr}
			var buf bytes.Buffer
			if err := e.WriteBinaryV3(&buf); err == nil {
				t.Fatal("WriteBinaryV3 accepted a lying trace source")
			}
		})
	}
	e.TraceRanks = []TraceRank{good, {Rank: good.Rank, Count: 1, LastT: 1, Scan: good.Scan}}
	var buf bytes.Buffer
	if err := e.WriteBinaryV3(&buf); err == nil {
		t.Fatal("WriteBinaryV3 accepted duplicate ranks")
	}
}
