package expdb

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/framing"
	"repro/internal/ingest"
	"repro/internal/intern"
	"repro/internal/metric"
)

// LazyDB is a lazily opened experiment database. For the v2 format the open
// exploits the section framing: the string table, header, metric table and
// CCT are decoded eagerly (they are needed for any query at all), while the
// optional sections — summary/computed overrides and the provenance record —
// are retained as raw, already-CRC-verified payloads and decoded only when
// something actually reads them. A viewer session that never displays a
// summary column never pays for decoding it.
//
// Laziness is invisible to correctness: faulting a section in produces
// exactly the state an eager Read would have built (the eager v2 reader is
// in fact OpenLazy followed by MaterializeAll), and damage to a skipped
// section surfaces on first access with the same typed error or degradation
// note the eager open reports — never a panic.
//
// v1 and XML databases have no section framing to exploit; OpenLazy falls
// back to an eager decode and every accessor is already satisfied.
//
// The fault-in entry points (NeedColumn, MaterializeAll, Provenance) are
// serialized by an internal mutex, so concurrent sessions sharing one
// database cannot double-decode a section or race its bookkeeping. Faulting
// still mutates the tree, however: callers running queries concurrently
// with a possible fault-in must order readers against it themselves (the
// engine's snapshot does, with a read-write lock around fault-in versus
// queries).
type LazyDB struct {
	// mu serializes fault-in: section decode, tree override application and
	// the loaded/damage bookkeeping below.
	mu sync.Mutex

	exp   *Experiment
	nodes []*core.Node // preorder nodes of the tree section (v2 only)

	// Retained CRC-verified payloads of each occurrence of the optional
	// sections, in stream order (the writer emits at most one of each, but
	// the eager reader decodes every occurrence, so the lazy path does too).
	// The damage counters record occurrences whose checksum failed.
	ovPayloads [][]byte
	ovDamaged  int
	ovLoaded   bool
	ovErr      error

	provPayloads [][]byte
	provDamaged  int
	provLoaded   bool
	provErr      error

	lazy  bool
	reads map[string]int
}

// OpenLazy opens a database with section-skipping laziness when the format
// allows it (v2); v1 and XML fall back to an eager decode.
func OpenLazy(r io.Reader) (*LazyDB, error) {
	size := framing.SizeOf(r)
	br := bufio.NewReader(r)
	head, err := br.Peek(len(dbMagic))
	if err != nil && len(head) == 0 {
		return nil, fmt.Errorf("expdb: %w", noEOF(err))
	}
	switch string(head) {
	case dbMagicV2:
		return openLazyV2(br, size)
	case dbMagicV3:
		// A lazy stream open cannot skip within an unseekable reader, and
		// the mappable layout already pays nothing at open when mapped
		// (OpenMapped); here decode eagerly, fully verified.
		e, err := readBinaryV3(br)
		if err != nil {
			return nil, err
		}
		return eagerDB(e), nil
	case dbMagic:
		e, err := readBinaryV1(br, size)
		if err != nil {
			return nil, err
		}
		return eagerDB(e), nil
	default:
		e, err := ReadXML(br)
		if err != nil {
			return nil, err
		}
		return eagerDB(e), nil
	}
}

// eagerDB wraps a fully decoded experiment: every fault-in is already
// satisfied.
func eagerDB(e *Experiment) *LazyDB {
	return &LazyDB{exp: e, ovLoaded: true, provLoaded: true, reads: map[string]int{}}
}

// Experiment returns the database. Columns backed by not-yet-faulted
// sections read as zero until NeedColumn or MaterializeAll loads them.
func (db *LazyDB) Experiment() *Experiment { return db.exp }

// Lazy reports whether any sections are being faulted on demand (true only
// for v2 databases).
func (db *LazyDB) Lazy() bool { return db.lazy }

// SectionReads reports how many times each v2 section has been decoded,
// keyed by section name — the observable that lazy opens skip untouched
// sections. The map is a copy.
func (db *LazyDB) SectionReads() map[string]int {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make(map[string]int, len(db.reads))
	for k, v := range db.reads {
		out[k] = v
	}
	return out
}

// NeedColumn ensures the values of metric column id are resident, faulting
// in the overrides section when the column (or, for a derived column, any
// column its formula transitively reads) is override-backed. The returned
// error is the same typed *SectionError an eager open would have reported
// for a malformed section; checksum damage degrades with a note instead.
func (db *LazyDB) NeedColumn(id int) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.ovLoaded {
		return db.ovErr
	}
	if columnNeedsOverrides(db.exp.Tree.Reg, id) {
		return db.loadOverrides()
	}
	return nil
}

// columnNeedsOverrides reports whether column id's values come (directly or
// through a derived formula) from the overrides section: summary and
// computed columns are stored there, and a derived column needs it when any
// referenced column does. Derived formulas only reference earlier columns,
// so the recursion terminates.
func columnNeedsOverrides(reg *metric.Registry, id int) bool {
	d := reg.ByID(id)
	if d == nil {
		return false
	}
	switch d.Kind {
	case metric.Summary, metric.Computed:
		return true
	case metric.Derived:
		e, err := d.Expr()
		if err != nil {
			return true // be conservative: fault in, let evaluation report
		}
		for _, ref := range e.ColumnRefs() {
			if columnNeedsOverrides(reg, ref) {
				return true
			}
		}
	}
	return false
}

// MaterializeAll faults in every retained section, producing exactly the
// eager-open state. Use before handing the experiment to concurrent
// readers or non-interactive processing.
func (db *LazyDB) MaterializeAll() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.loadOverrides(); err != nil {
		return err
	}
	return db.loadProvenance()
}

// Provenance faults in the provenance section and returns the quarantine
// report (nil when the database has none or the damaged section was
// dropped).
func (db *LazyDB) Provenance() (*ingest.Report, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.loadProvenance(); err != nil {
		return nil, err
	}
	return db.exp.Provenance, nil
}

// loadOverrides and loadProvenance run with db.mu held.
func (db *LazyDB) loadOverrides() error {
	if db.ovLoaded {
		return db.ovErr
	}
	db.ovLoaded = true
	for ; db.ovDamaged > 0; db.ovDamaged-- {
		db.exp.Notes = append(db.exp.Notes, "overrides section failed its checksum; summary and computed columns were dropped")
	}
	if len(db.ovPayloads) == 0 {
		return nil
	}
	db.reads["overrides"]++
	inclOv := map[*core.Node][]colVal{}
	exclOv := map[*core.Node][]colVal{}
	for _, payload := range db.ovPayloads {
		bound := int64(len(payload))
		pr := bufio.NewReader(bytes.NewReader(payload))
		if err := readOverridesSection(pr, db.exp.Tree.Root, db.nodes, inclOv, exclOv, func() int64 { return bound }); err != nil {
			db.ovErr = &SectionError{Section: "overrides", Err: err}
			return db.ovErr
		}
	}
	db.ovPayloads = nil
	for n, vals := range inclOv {
		for _, cv := range vals {
			n.Incl.Set(cv.col, cv.val)
		}
	}
	for n, vals := range exclOv {
		for _, cv := range vals {
			n.Excl.Set(cv.col, cv.val)
		}
	}
	// Re-run derived kernels: formulas over summary/computed inputs now see
	// the faulted values. Whole columns are overwritten, so this lands on
	// the same state the eager order (overrides before derived) produces.
	if err := db.exp.Tree.ApplyDerivedTree(); err != nil {
		db.ovErr = err
		return err
	}
	return nil
}

func (db *LazyDB) loadProvenance() error {
	if db.provLoaded {
		return db.provErr
	}
	db.provLoaded = true
	for ; db.provDamaged > 0; db.provDamaged-- {
		db.exp.Notes = append(db.exp.Notes, "provenance section failed its checksum; the quarantine record was dropped")
	}
	if len(db.provPayloads) == 0 {
		return nil
	}
	db.reads["provenance"]++
	for _, payload := range db.provPayloads {
		bound := int64(len(payload))
		pr := bufio.NewReader(bytes.NewReader(payload))
		rep, err := readProvenanceSection(pr, func() int64 { return bound })
		if err != nil {
			db.provErr = &SectionError{Section: "provenance", Err: err}
			return db.provErr
		}
		db.exp.Provenance = rep
	}
	db.provPayloads = nil
	return nil
}

// openLazyV2 scans the framed stream once: required sections (strings,
// header, metrics, tree) are decoded on the spot — damage there is fatal —
// while the optional overrides/provenance payloads are retained undecoded
// (or flagged damaged) for on-demand faulting. Framing truncation is fatal
// at open: the scan consumes every frame, paying the CRC pass up front.
func openLazyV2(br *bufio.Reader, size int64) (*LazyDB, error) {
	fr, err := framing.NewReader(br, size, dbMagicV2)
	if err != nil {
		return nil, fmt.Errorf("expdb: %w", err)
	}
	db := &LazyDB{exp: &Experiment{}, lazy: true, reads: map[string]int{}}
	e := db.exp
	var syms []intern.Sym
	var descs []metricDesc
	var haveStrings, haveHeader, haveMetrics, haveTree bool

	for {
		id, payload, err := fr.Next()
		if err == io.EOF {
			break
		}
		var ck *framing.ChecksumError
		if errors.As(err, &ck) {
			switch id {
			case dbSecOverrides:
				db.ovDamaged++
				continue
			case dbSecProvenance:
				db.provDamaged++
				continue
			default:
				return nil, &SectionError{Section: sectionName(id), Err: err}
			}
		}
		if err != nil {
			return nil, &SectionError{Section: sectionName(id), Err: err}
		}
		pr := bufio.NewReader(bytes.NewReader(payload))
		// The payload length is CRC-verified, so it is a sound allocation
		// bound for every count inside the section.
		bound := int64(len(payload))
		switch id {
		case dbSecStrings:
			if haveStrings {
				return nil, &SectionError{Section: "strings", Err: fmt.Errorf("duplicate section")}
			}
			nStr, err := getU(pr)
			if err != nil {
				return nil, &SectionError{Section: "strings", Err: noEOF(err)}
			}
			if int64(nStr) > bound {
				return nil, &SectionError{Section: "strings", Err: fmt.Errorf("implausible string count %d", nStr)}
			}
			syms, err = readStrTable(pr, nStr, func() int64 { return bound })
			if err != nil {
				return nil, &SectionError{Section: "strings", Err: err}
			}
			db.reads["strings"]++
			haveStrings = true
		case dbSecHeader:
			if !haveStrings {
				return nil, &SectionError{Section: "header", Err: fmt.Errorf("appears before the strings section")}
			}
			if haveHeader {
				return nil, &SectionError{Section: "header", Err: fmt.Errorf("duplicate section")}
			}
			progRef, err := getU(pr)
			if err != nil {
				return nil, &SectionError{Section: "header", Err: noEOF(err)}
			}
			if progRef >= uint64(len(syms)) {
				return nil, &SectionError{Section: "header", Err: fmt.Errorf("string ref %d out of range", progRef)}
			}
			e.Program = syms[progRef].String()
			ranks, err := getU(pr)
			if err != nil {
				return nil, &SectionError{Section: "header", Err: noEOF(err)}
			}
			if ranks > math.MaxInt32 {
				return nil, &SectionError{Section: "header", Err: fmt.Errorf("implausible rank count %d", ranks)}
			}
			e.NRanks = int(ranks)
			db.reads["header"]++
			haveHeader = true
		case dbSecMetrics:
			if !haveStrings {
				return nil, &SectionError{Section: "metrics", Err: fmt.Errorf("appears before the strings section")}
			}
			if haveMetrics {
				return nil, &SectionError{Section: "metrics", Err: fmt.Errorf("duplicate section")}
			}
			getS := func() (string, error) {
				i, err := getU(pr)
				if err != nil {
					return "", err
				}
				if i >= uint64(len(syms)) {
					return "", fmt.Errorf("expdb: string ref %d out of range", i)
				}
				return syms[i].String(), nil
			}
			descs, err = readMetricDescs(pr, getS, func() int64 { return bound })
			if err != nil {
				return nil, &SectionError{Section: "metrics", Err: err}
			}
			db.reads["metrics"]++
			haveMetrics = true
		case dbSecTree:
			if !haveStrings || !haveHeader || !haveMetrics {
				return nil, &SectionError{Section: "tree", Err: fmt.Errorf("appears before strings/header/metrics")}
			}
			if haveTree {
				return nil, &SectionError{Section: "tree", Err: fmt.Errorf("duplicate section")}
			}
			reg, err := rebuildRegistry(descs)
			if err != nil {
				return nil, &SectionError{Section: "metrics", Err: err}
			}
			e.Tree = core.NewTree(e.Program, reg)
			db.nodes, err = readTreeSection(pr, e, syms, func() int64 { return bound })
			if err != nil {
				return nil, &SectionError{Section: "tree", Err: err}
			}
			db.reads["tree"]++
			haveTree = true
		case dbSecOverrides:
			if !haveTree {
				return nil, &SectionError{Section: "overrides", Err: fmt.Errorf("appears before the tree section")}
			}
			db.ovPayloads = append(db.ovPayloads, payload)
		case dbSecProvenance:
			db.provPayloads = append(db.provPayloads, payload)
		default:
			// Unknown sections are skipped (their checksum was verified by
			// Next), but noted: with no newer format version in existence,
			// an unknown id more likely means a damaged id byte, and the
			// open should be visibly degraded either way.
			e.Notes = append(e.Notes, fmt.Sprintf("unknown section %d was skipped", id))
		}
	}
	if !haveStrings || !haveHeader || !haveMetrics || !haveTree {
		missing := ""
		for _, s := range []struct {
			ok   bool
			name string
		}{{haveStrings, "strings"}, {haveHeader, "header"}, {haveMetrics, "metrics"}, {haveTree, "tree"}} {
			if !s.ok {
				missing = s.name
				break
			}
		}
		return nil, &SectionError{Section: missing, Err: fmt.Errorf("section missing")}
	}
	if err := e.finalize(nil, nil); err != nil {
		return nil, err
	}
	return db, nil
}
