package expdb

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/correlate"
	"repro/internal/framing"
	"repro/internal/profile"
	"repro/internal/structfile"
	"repro/internal/trace"
)

// Trace storage in v3 databases.
//
// Write side: Experiment.TraceRanks supplies one streaming source per
// rank. WriteBinaryV3 streams each source's records into a trace section
// (kind 8, col = rank) through the aligned writer's incremental-CRC path —
// peak memory is one chunk buffer, never O(events) — and builds the rank's
// zoom pyramid in the same pass, emitting one pyramid section (kind 9) per
// level and a singleton tracemeta table (kind 10) describing every rank's
// geometry. Record call-path ids are rows of the database's tree: row 0 is
// the root, preorder node i is row i+1 — the same structural numbering the
// column slabs use, so a reader resolves a trace cell against the already
// decoded tree with an array index.
//
// Read side: MappedDB.Trace hands out zero-copy record and bucket views
// with the same lazy, memoized checksum discipline as columns. Damage to
// any trace, pyramid or tracemeta span degrades — the affected rank (or
// all traces) is dropped with an Experiment.Notes entry — and never fails
// the profile views.

// TraceRank is one rank's write-side trace source. Scan must replay
// exactly Count records in nondecreasing time order ending at LastT, with
// CPIDs already rewritten to tree rows.
type TraceRank struct {
	Rank  int
	Count uint64
	LastT uint64
	Scan  func(emit func(trace.Rec) error) error
}

// writeTraceSections streams every trace rank plus its pyramid and the
// tracemeta table. Ranks must be ascending and unique; zero-event ranks
// are skipped entirely (no sections, no meta entry).
func (e *Experiment) writeTraceSections(
	aw *framing.AlignedWriter,
	emit func(kind, plane uint8, col uint32, payload []byte) error,
	add func(kind, plane uint8, col uint32, sec framing.AlignedSection),
) error {
	if len(e.TraceRanks) == 0 {
		return nil
	}
	var metaBuf []byte
	prev := -1
	for _, tr := range e.TraceRanks {
		if tr.Rank <= prev {
			return fmt.Errorf("expdb: trace ranks not ascending (%d after %d)", tr.Rank, prev)
		}
		prev = tr.Rank
		if tr.Count == 0 {
			continue
		}
		if tr.Rank < 0 || int64(tr.Rank) > math.MaxUint32 {
			return fmt.Errorf("expdb: trace rank %d out of range", tr.Rank)
		}
		pb := trace.NewBuilder(tr.Rank, tr.Count, tr.LastT)
		sw := aw.Begin()
		buf := make([]byte, 0, 512*trace.RecSize)
		var n, lastT uint64
		err := tr.Scan(func(r trace.Rec) error {
			n++
			if n > tr.Count {
				return fmt.Errorf("expdb: rank %d trace emitted more than its declared %d records", tr.Rank, tr.Count)
			}
			if r.T < lastT {
				return fmt.Errorf("expdb: rank %d trace time regressed (%d after %d)", tr.Rank, r.T, lastT)
			}
			lastT = r.T
			if err := pb.Add(r); err != nil {
				return err
			}
			buf = trace.AppendRec(buf, r)
			if len(buf) == cap(buf) {
				_, werr := sw.Write(buf)
				buf = buf[:0]
				return werr
			}
			return nil
		})
		if err != nil {
			return err
		}
		if n != tr.Count {
			return fmt.Errorf("expdb: rank %d trace emitted %d of its declared %d records", tr.Rank, n, tr.Count)
		}
		if lastT != tr.LastT {
			return fmt.Errorf("expdb: rank %d trace ends at %d, declared %d", tr.Rank, lastT, tr.LastT)
		}
		if len(buf) > 0 {
			if _, err := sw.Write(buf); err != nil {
				return err
			}
		}
		sec, err := sw.Finish()
		if err != nil {
			return err
		}
		add(dbSecTrace, 0, uint32(tr.Rank), sec)

		meta, levels := pb.Finish()
		for l, lv := range levels {
			if err := emit(dbSecPyramid, uint8(l), uint32(tr.Rank), trace.EncodeLevel(lv)); err != nil {
				return err
			}
		}
		var en [traceMetaEntrySize]byte
		binary.LittleEndian.PutUint32(en[0:4], uint32(tr.Rank))
		binary.LittleEndian.PutUint32(en[4:8], meta.NBuckets)
		binary.LittleEndian.PutUint64(en[8:16], meta.Count)
		binary.LittleEndian.PutUint64(en[16:24], meta.LastT)
		binary.LittleEndian.PutUint64(en[24:32], meta.Width)
		metaBuf = append(metaBuf, en[:]...)
	}
	if len(metaBuf) > 0 {
		return emit(dbSecTraceMeta, 0, 0, metaBuf)
	}
	return nil
}

// TraceView is one mapped database's trace data, implementing
// trace.Source over zero-copy views of the pyramid and record sections.
// It is immutable once built; renders need no lock beyond the snapshot
// refcount that keeps the mapping alive.
type TraceView struct {
	ranks  []int
	metas  map[int]trace.Meta
	levels map[int][][]trace.Bucket
	recs   map[int][]trace.Rec
}

// TraceRanks lists the ranks with (undamaged) trace data, ascending.
func (tv *TraceView) TraceRanks() []int { return tv.ranks }

// TraceMeta returns the rank's trace geometry.
func (tv *TraceView) TraceMeta(rank int) (trace.Meta, bool) {
	m, ok := tv.metas[rank]
	return m, ok
}

// TraceLevel returns one zoom level of the rank's pyramid (0 = finest).
func (tv *TraceView) TraceLevel(rank, level int) []trace.Bucket {
	lv := tv.levels[rank]
	if level < 0 || level >= len(lv) {
		return nil
	}
	return lv[level]
}

// Records returns the rank's raw trace records, zero-copy.
func (tv *TraceView) Records(rank int) []trace.Rec { return tv.recs[rank] }

// Trace builds the database's trace view on first call, verifying every
// trace, pyramid and tracemeta checksum then (memoized — later calls are
// free). Damage degrades with a Notes entry and drops the affected rank
// (or, for tracemeta, all traces); profile views are never affected. A
// database without traces returns an empty view.
func (db *MappedDB) Trace() (*TraceView, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, err := db.experimentLocked(); err != nil {
		return nil, err
	}
	if db.traceDone {
		return db.traceView, nil
	}
	db.traceDone = true
	db.traceView = db.buildTraceViewLocked()
	return db.traceView, nil
}

func (db *MappedDB) buildTraceViewLocked() *TraceView {
	tv := &TraceView{
		metas:  map[int]trace.Meta{},
		levels: map[int][][]trace.Bucket{},
		recs:   map[int][]trace.Rec{},
	}
	note := func(format string, args ...any) {
		db.exp.Notes = append(db.exp.Notes, fmt.Sprintf(format, args...))
	}
	mi := -1
	for i, s := range db.secs {
		if s.kind == dbSecTraceMeta {
			mi = i
			break
		}
	}
	if mi < 0 {
		return tv
	}
	ms := db.secs[mi]
	db.reads["tracemeta"]++
	if framing.ChecksumPadded(db.span(ms)) != ms.crc {
		note("tracemeta section failed its CRC32C check; traces were dropped")
		return tv
	}
	// Index the rank-keyed sections once.
	traceSec := map[uint32]int{}
	pyrSecs := map[uint32]map[uint8]int{}
	for i, s := range db.secs {
		switch s.kind {
		case dbSecTrace:
			traceSec[s.col] = i
		case dbSecPyramid:
			if pyrSecs[s.col] == nil {
				pyrSecs[s.col] = map[uint8]int{}
			}
			pyrSecs[s.col][s.plane] = i
		}
	}
	payload := db.payload(ms)
	prev := int64(-1)
	for o := 0; o < len(payload); o += traceMetaEntrySize {
		en := payload[o : o+traceMetaEntrySize]
		m := trace.Meta{
			Rank:     int(binary.LittleEndian.Uint32(en[0:4])),
			NBuckets: binary.LittleEndian.Uint32(en[4:8]),
			Count:    binary.LittleEndian.Uint64(en[8:16]),
			LastT:    binary.LittleEndian.Uint64(en[16:24]),
			Width:    binary.LittleEndian.Uint64(en[24:32]),
		}
		if int64(m.Rank) <= prev {
			note("tracemeta entries out of order; remaining traces were dropped")
			return tv
		}
		prev = int64(m.Rank)
		if !db.adoptTraceRankLocked(tv, m, traceSec, pyrSecs) {
			note("trace data for rank %d is damaged or inconsistent; its trace was dropped", m.Rank)
		}
	}
	tv.ranks = make([]int, 0, len(tv.metas))
	for r := range tv.metas {
		tv.ranks = append(tv.ranks, r)
	}
	sort.Ints(tv.ranks)
	return tv
}

// adoptTraceRankLocked validates and adopts one rank's trace + pyramid
// sections; false means the rank must be dropped (caller notes it).
func (db *MappedDB) adoptTraceRankLocked(tv *TraceView, m trace.Meta, traceSec map[uint32]int, pyrSecs map[uint32]map[uint8]int) bool {
	// Geometry sanity: power-of-two base, positive width covering LastT.
	if m.Count == 0 || m.NBuckets == 0 || m.NBuckets > trace.MaxBaseBuckets ||
		m.NBuckets&(m.NBuckets-1) != 0 || m.Width == 0 || m.LastT/m.Width >= uint64(m.NBuckets) {
		return false
	}
	rank := uint32(m.Rank)
	ti, ok := traceSec[rank]
	if !ok {
		return false
	}
	ts := db.secs[ti]
	if uint64(ts.length) != m.Count*trace.RecSize {
		return false
	}
	if !db.verifyTraceSecLocked(ti, "trace") {
		return false
	}
	nLevels := m.Levels()
	levels := make([][]trace.Bucket, nLevels)
	for l := 0; l < nLevels; l++ {
		pi, ok := pyrSecs[rank][uint8(l)]
		if !ok {
			return false
		}
		ps := db.secs[pi]
		if int(ps.length/trace.BucketSize) != trace.LevelBuckets(m.NBuckets, l) {
			return false
		}
		if !db.verifyTraceSecLocked(pi, "pyramid") {
			return false
		}
		levels[l] = trace.BucketsFromBytes(db.payload(ps))
	}
	tv.metas[m.Rank] = m
	tv.levels[m.Rank] = levels
	tv.recs[m.Rank] = trace.RecsFromBytes(db.payload(ts))
	return true
}

// verifyTraceSecLocked checks one trace/pyramid section's CRC, memoized.
func (db *MappedDB) verifyTraceSecLocked(si int, kind string) bool {
	if err, done := db.verified[si]; done {
		return err == nil
	}
	s := db.secs[si]
	db.reads[kind]++
	if framing.ChecksumPadded(db.span(s)) != s.crc {
		db.verified[si] = fmt.Errorf("expdb: %s section for rank %d failed its CRC32C check", kind, s.col)
		return false
	}
	db.verified[si] = nil
	return true
}

// NodeAt resolves a structural row id (a trace record's CPID) to its tree
// node: row 0 is the root, preorder node i is row i+1. Nil when out of
// range or the metadata failed to decode.
func (db *MappedDB) NodeAt(row int) *core.Node {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, err := db.experimentLocked(); err != nil {
		return nil
	}
	switch {
	case row == 0:
		return db.exp.Tree.Root
	case row >= 1 && row-1 < len(db.nodes):
		return db.nodes[row-1]
	}
	return nil
}

// PreorderRows maps every tree node to its structural row id, in exactly
// the order encodeTreeV3 assigns them: root = 0, preorder node i = i+1.
// hpcprof's trace pass uses it to rewrite trace CPIDs to rows.
func (e *Experiment) PreorderRows() map[*core.Node]uint32 {
	out := map[*core.Node]uint32{e.Tree.Root: 0}
	row := uint32(1)
	var walk func(n *core.Node)
	walk = func(n *core.Node) {
		out[n] = row
		row++
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, c := range e.Tree.Root.Children {
		walk(c)
	}
	return out
}

// TraceRanksFromProfiles attaches in-memory trace captures to e: for each
// profile with a capture (thread 0 only — trace sections are keyed by
// rank), it resolves the trie against e's tree in lookup-only mode and
// installs a TraceRank whose Scan replays the capture with CPIDs
// rewritten to tree rows. The merge that built e.Tree must have included
// these profiles.
func TraceRanksFromProfiles(e *Experiment, doc *structfile.Doc, profs []*profile.Profile) error {
	rows := e.PreorderRows()
	seen := map[int]bool{}
	var trs []TraceRank
	for _, p := range profs {
		if p == nil || p.Trace == nil || p.Trace.Count() == 0 || p.Thread != 0 {
			continue
		}
		if seen[p.Rank] {
			return fmt.Errorf("expdb: duplicate trace capture for rank %d", p.Rank)
		}
		seen[p.Rank] = true
		frames, err := correlate.ResolveFrames(doc, p, e.Tree)
		if err != nil {
			return fmt.Errorf("expdb: rank %d: %w", p.Rank, err)
		}
		nodes := p.Trace.Nodes()
		remap := make([]uint32, len(nodes))
		for i, n := range nodes {
			fr := frames[n]
			if fr == nil {
				return fmt.Errorf("expdb: rank %d traced frame %d did not resolve against the tree", p.Rank, i)
			}
			row, ok := rows[fr]
			if !ok {
				return fmt.Errorf("expdb: rank %d traced frame %d resolved outside the tree", p.Rank, i)
			}
			remap[i] = row
		}
		td := p.Trace
		trs = append(trs, TraceRank{
			Rank:  p.Rank,
			Count: td.Count(),
			LastT: td.LastT(),
			Scan: func(emit func(trace.Rec) error) error {
				return td.Scan(func(r trace.Rec) error {
					r.CPID = remap[r.CPID]
					return emit(r)
				})
			},
		})
	}
	sort.Slice(trs, func(i, j int) bool { return trs[i].Rank < trs[j].Rank })
	e.TraceRanks = trs
	return nil
}

// SectionSpan is one mapped section's padded byte span, labeled by kind —
// the unit of the -residency probes' per-kind breakdown.
type SectionSpan struct {
	Kind string
	Data []byte
}

// SectionSpans lists every section's mapped span grouped under its kind
// name ("strings", "header", "metrics", "tree", "provenance", "column",
// "trace", "pyramid", "tracemeta").
func (db *MappedDB) SectionSpans() []SectionSpan {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]SectionSpan, 0, len(db.secs))
	for _, s := range db.secs {
		name := sectionName(s.kind)
		if s.kind == dbSecColumn {
			name = "column"
		}
		out = append(out, SectionSpan{Kind: name, Data: db.span(s)})
	}
	return out
}

var _ trace.Source = (*TraceView)(nil)
