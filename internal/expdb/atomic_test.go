package expdb

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteFileAtomic covers the publish contract: success installs the
// full payload, failure leaves the previous file (or absence) intact and
// cleans its temp file up — an interrupted merge must never leave a torn
// database a spool watcher could ingest.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.db")

	if err := WriteFileAtomic(path, func(f *os.File) error {
		_, err := f.WriteString("generation-1")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "generation-1" {
		t.Fatalf("payload = %q", got)
	}

	// A failing writer must not disturb the published generation.
	boom := errors.New("disk full")
	err := WriteFileAtomic(path, func(f *os.File) error {
		_, _ = f.WriteString("torn gener")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want wrapped %v", err, boom)
	}
	if got, _ := os.ReadFile(path); string(got) != "generation-1" {
		t.Fatalf("after failed write payload = %q, want old generation", got)
	}

	// Replacement is atomic: the new bytes fully supersede the old.
	if err := WriteFileAtomic(path, func(f *os.File) error {
		_, err := f.WriteString("g2")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "g2" {
		t.Fatalf("replaced payload = %q", got)
	}

	// No temp droppings either way.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
	if len(ents) != 1 {
		t.Fatalf("dir has %d entries, want 1", len(ents))
	}
}
