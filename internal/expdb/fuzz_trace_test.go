package expdb

import (
	"bytes"
	"testing"

	"repro/internal/lower"
	"repro/internal/merge"
	"repro/internal/mpi"
	"repro/internal/prog"
	"repro/internal/sampler"
	"repro/internal/sim"
	"repro/internal/structfile"
	"repro/internal/trace"
)

// tracedSeed builds a v3 database whose ranks carry trace, pyramid and
// tracemeta sections.
func tracedSeed(f *testing.F) []byte {
	f.Helper()
	p := prog.NewBuilder("fuzztr").
		File("a.c").
		Proc("work", 10,
			prog.Lx(11, prog.ScaledInt{X: prog.RankInt{}, Num: 20, Den: 1, Off: 20},
				prog.W(12, 10))).
		Proc("main", 1,
			prog.C(2, "work"),
			prog.Sync(3)).
		Entry("main").MustBuild()
	im, err := lower.Lower(p, lower.Options{})
	if err != nil {
		f.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		f.Fatal(err)
	}
	profs, err := mpi.Run(im, mpi.Config{
		NRanks: 3,
		Events: []sampler.EventConfig{{Event: sim.EvCycles, Period: 10}},
		Trace:  true,
	})
	if err != nil {
		f.Fatal(err)
	}
	res, err := merge.Profiles(doc, profs)
	if err != nil {
		f.Fatal(err)
	}
	e := FromMerge(res)
	if err := TraceRanksFromProfiles(e, doc, profs); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.WriteBinaryV3(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadTrace guards the trace adoption path of the mapped v3 reader:
// arbitrary bytes must open with traces either adopted or dropped with a
// note, never panic, and whatever traces survive must render a bounded
// view. The geometry checks (power-of-two bucket counts, level tiling,
// record counts against the declared meta) all run before any slab view
// is trusted.
func FuzzReadTrace(f *testing.F) {
	good := tracedSeed(f)
	f.Add(good)
	f.Add([]byte("CPDB3"))
	f.Add([]byte{})
	if len(good) > 64 {
		f.Add(good[:len(good)*2/3]) // truncated mid-section
		f.Add(good[:len(good)-32])  // trailer sheared off
		// Trace, pyramid and tracemeta sections sit late in the section
		// area, just before the index: flips in the last third mostly land
		// inside them, exercising the drop-with-note paths.
		for _, at := range []int{len(good) * 2 / 3, len(good) * 3 / 4, len(good) - 48} {
			mut := append([]byte(nil), good...)
			mut[at] ^= 0x7f
			f.Add(mut)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := newMappedDB(data)
		if err != nil {
			return
		}
		if _, err := db.Experiment(); err != nil {
			return
		}
		tv, err := db.Trace()
		if err != nil || tv == nil {
			return
		}
		for _, rank := range tv.TraceRanks() {
			if _, ok := tv.TraceMeta(rank); !ok {
				t.Fatalf("rank %d listed without meta", rank)
			}
		}
		if len(tv.TraceRanks()) > 0 {
			if _, err := trace.View(tv, 0, 0, nil, 32, 4); err != nil {
				t.Fatalf("surviving traces failed to render: %v", err)
			}
		}
	})
}
