// Package pprofio bridges this reproduction to the pprof ecosystem: it
// imports gzipped profile.proto files (Go runtime/pprof CPU, heap, mutex,
// block profiles) as format-neutral source.Profiles, and exports any
// opened experiment database back to pprof. The wire codec is hand-rolled
// over the protobuf varint encoding — the build must not fetch
// dependencies, and profile.proto uses only varint and length-delimited
// fields, so a complete decoder/encoder is small.
//
// Import runs in two modes. Foreign profiles (anything produced by Go's
// runtime/pprof or another pprof writer) map at pprof's own granularity:
// each stack entry becomes a Frame keyed by function identity, the leaf
// line becomes a Stmt, and each sample-type column becomes a raw metric
// plane with period 1. Profiles exported by this package carry "repro:"
// markers (function system_name scope kinds, location addresses, comment
// metadata) that make the mapping lossless, so export→import round-trips
// a pprof-shaped database byte-identically (DESIGN.md §16).
package pprofio

import (
	"fmt"
	"math"
)

// Wire-level field numbers of profile.proto (the pprof interchange
// schema). Only the fields this bridge reads or writes are named.
const (
	// message Profile
	fProfileSampleType        = 1
	fProfileSample            = 2
	fProfileMapping           = 3
	fProfileLocation          = 4
	fProfileFunction          = 5
	fProfileStringTable       = 6
	fProfileTimeNanos         = 9
	fProfileDurationNanos     = 10
	fProfilePeriodType        = 11
	fProfilePeriod            = 12
	fProfileComment           = 13
	fProfileDefaultSampleType = 14

	// message ValueType
	fValueTypeType = 1
	fValueTypeUnit = 2

	// message Sample
	fSampleLocationID = 1
	fSampleValue      = 2

	// message Mapping
	fMappingID       = 1
	fMappingFilename = 5

	// message Location
	fLocationID        = 1
	fLocationMappingID = 2
	fLocationAddress   = 3
	fLocationLine      = 4

	// message Line
	fLineFunctionID = 1
	fLineLine       = 2
	fLineColumn     = 3

	// message Function
	fFunctionID         = 1
	fFunctionName       = 2
	fFunctionSystemName = 3
	fFunctionFilename   = 4
	fFunctionStartLine  = 5
)

// wire types
const (
	wtVarint = 0
	wtI64    = 1
	wtLen    = 2
	wtI32    = 5
)

// dec is a bounds-checked protobuf wire reader over one buffer.
type dec struct {
	b   []byte
	off int
}

func (d *dec) done() bool { return d.off >= len(d.b) }

// varint reads one base-128 varint (at most 10 bytes).
func (d *dec) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if d.off >= len(d.b) {
			return 0, fmt.Errorf("pprofio: truncated varint")
		}
		c := d.b[d.off]
		d.off++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("pprofio: varint overflows 64 bits")
}

// bytes reads one length-delimited field payload (a view, not a copy).
func (d *dec) bytes() ([]byte, error) {
	n, err := d.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.b)-d.off) {
		return nil, fmt.Errorf("pprofio: length %d exceeds remaining %d bytes", n, len(d.b)-d.off)
	}
	p := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return p, nil
}

// tag reads one field tag and returns (field number, wire type).
func (d *dec) tag() (int, int, error) {
	t, err := d.varint()
	if err != nil {
		return 0, 0, err
	}
	if t>>3 > math.MaxInt32 {
		return 0, 0, fmt.Errorf("pprofio: field number %d out of range", t>>3)
	}
	return int(t >> 3), int(t & 7), nil
}

// skip consumes one field payload of the given wire type.
func (d *dec) skip(wt int) error {
	switch wt {
	case wtVarint:
		_, err := d.varint()
		return err
	case wtI64:
		if len(d.b)-d.off < 8 {
			return fmt.Errorf("pprofio: truncated fixed64")
		}
		d.off += 8
		return nil
	case wtLen:
		_, err := d.bytes()
		return err
	case wtI32:
		if len(d.b)-d.off < 4 {
			return fmt.Errorf("pprofio: truncated fixed32")
		}
		d.off += 4
		return nil
	}
	return fmt.Errorf("pprofio: unsupported wire type %d", wt)
}

// int64s appends a varint field value, or the elements of a packed
// length-delimited payload, to list. profile.proto writers use both
// encodings for repeated scalars.
func int64s(list []int64, wt int, d *dec) ([]int64, error) {
	switch wt {
	case wtVarint:
		v, err := d.varint()
		if err != nil {
			return nil, err
		}
		return append(list, int64(v)), nil
	case wtLen:
		p, err := d.bytes()
		if err != nil {
			return nil, err
		}
		pd := &dec{b: p}
		for !pd.done() {
			v, err := pd.varint()
			if err != nil {
				return nil, err
			}
			list = append(list, int64(v))
		}
		return list, nil
	}
	return nil, fmt.Errorf("pprofio: repeated scalar with wire type %d", wt)
}

func uint64s(list []uint64, wt int, d *dec) ([]uint64, error) {
	switch wt {
	case wtVarint:
		v, err := d.varint()
		if err != nil {
			return nil, err
		}
		return append(list, v), nil
	case wtLen:
		p, err := d.bytes()
		if err != nil {
			return nil, err
		}
		pd := &dec{b: p}
		for !pd.done() {
			v, err := pd.varint()
			if err != nil {
				return nil, err
			}
			list = append(list, v)
		}
		return list, nil
	}
	return nil, fmt.Errorf("pprofio: repeated scalar with wire type %d", wt)
}

// enc is a protobuf wire writer.
type enc struct {
	b []byte
}

func (e *enc) varint(v uint64) {
	for v >= 0x80 {
		e.b = append(e.b, byte(v)|0x80)
		v >>= 7
	}
	e.b = append(e.b, byte(v))
}

func (e *enc) tag(field, wt int) { e.varint(uint64(field)<<3 | uint64(wt)) }

// intField writes one varint field, omitting the proto3 zero default.
func (e *enc) intField(field int, v int64) {
	if v == 0 {
		return
	}
	e.tag(field, wtVarint)
	e.varint(uint64(v))
}

func (e *enc) uintField(field int, v uint64) {
	if v == 0 {
		return
	}
	e.tag(field, wtVarint)
	e.varint(v)
}

// bytesField writes one length-delimited field (submessage or string).
func (e *enc) bytesField(field int, p []byte) {
	e.tag(field, wtLen)
	e.varint(uint64(len(p)))
	e.b = append(e.b, p...)
}

// packedField writes a repeated scalar field in packed encoding.
func (e *enc) packedField(field int, vs []int64) {
	if len(vs) == 0 {
		return
	}
	var p enc
	for _, v := range vs {
		p.varint(uint64(v))
	}
	e.bytesField(field, p.b)
}

func (e *enc) packedUints(field int, vs []uint64) {
	if len(vs) == 0 {
		return
	}
	var p enc
	for _, v := range vs {
		p.varint(v)
	}
	e.bytesField(field, p.b)
}
