package pprofio

import (
	"bytes"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"repro/internal/expdb"
	"repro/internal/source"
)

// FuzzImportPprof throws arbitrary bytes at the importer. Seeds are real
// profiles: a Go CPU profile and heap profile of the fuzzing process
// itself, one of this package's own exports (repro-marked), a raw
// hand-built foreign profile, and truncations. The invariant is the fault
// model's: malformed input may be rejected but must never panic, and any
// accepted profile must build a tree without error.
func FuzzImportPprof(f *testing.F) {
	var cpu bytes.Buffer
	if err := pprof.StartCPUProfile(&cpu); err == nil {
		spin := time.Now()
		for time.Since(spin) < 50*time.Millisecond {
			runtime.Gosched()
		}
		pprof.StopCPUProfile()
		f.Add(cpu.Bytes())
	}
	f.Add(writeHeapProfile(f))
	raw := foreignProto().marshal()
	f.Add(raw)
	if im, err := Import(bytes.NewReader(raw)); err == nil {
		if tree, err := source.BuildTree(im); err == nil {
			var exported bytes.Buffer
			if err := Export(&expdb.Experiment{Program: im.Program(), NRanks: 1, Tree: tree},
				&exported); err == nil {
				f.Add(exported.Bytes())
			}
		}
	}
	f.Add(raw[:len(raw)/2])
	f.Add([]byte{})
	f.Add([]byte{0x1f, 0x8b})

	f.Fuzz(func(t *testing.T, data []byte) {
		im, err := Import(bytes.NewReader(data))
		if err != nil {
			return
		}
		tree, err := source.BuildTree(im)
		if err != nil {
			return
		}
		// An accepted profile must also survive export (arbitrary interned
		// strings, weird lines, zero metrics are all reachable here).
		_ = Export(&expdb.Experiment{Program: im.Program(), NRanks: im.NRanks(), Tree: tree},
			&bytes.Buffer{})
	})
}
