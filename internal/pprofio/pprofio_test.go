package pprofio

import (
	"bytes"
	"runtime"
	"runtime/pprof"
	"testing"

	"repro/internal/core"
	"repro/internal/expdb"
	"repro/internal/source"
)

// foreignProto hand-builds a small Go-shaped CPU profile: main calls work
// (call site main.go:12), plus a stack where work was inlined into main
// (one location, two lines, innermost first).
func foreignProto() *proto {
	st := newStringTable()
	p := &proto{
		sampleTypes: []valueType{
			{typ: st.id("samples"), unit: st.id("count")},
			{typ: st.id("cpu"), unit: st.id("nanoseconds")},
		},
		mappings: []mapping{{id: 1, filename: st.id("/bin/app")}},
		functions: []function{
			{id: 1, name: st.id("main.main"), filename: st.id("main.go"), startLine: 10},
			{id: 2, name: st.id("main.work"), filename: st.id("work.go"), startLine: 20},
		},
		locations: []location{
			// call site in main
			{id: 1, mappingID: 1, address: 0x1000, lines: []line{{functionID: 1, line: 12}}},
			// leaf in work
			{id: 2, mappingID: 1, address: 0x2000, lines: []line{{functionID: 2, line: 25}}},
			// work inlined into main: innermost first, caller last
			{id: 3, mappingID: 1, address: 0x3000, lines: []line{
				{functionID: 2, line: 26},
				{functionID: 1, line: 14},
			}},
		},
		samples: []sample{
			{locs: []uint64{2, 1}, values: []int64{3, 30}}, // main -> work
			{locs: []uint64{1}, values: []int64{1, 10}},    // main leaf
			{locs: []uint64{3}, values: []int64{2, 20}},    // main -> inlined work
		},
		period:     1,
		periodType: valueType{typ: st.id("cpu"), unit: st.id("nanoseconds")},
	}
	p.strings = st.list
	return p
}

func importBytes(t *testing.T, b []byte) *Profile {
	t.Helper()
	im, err := Import(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return im
}

// TestImportForeign checks the pprof-granularity mapping: frames keyed by
// function identity, caller lines as call sites, leaf lines as statements,
// inlined bodies as ordinary frames.
func TestImportForeign(t *testing.T) {
	im := importBytes(t, foreignProto().marshal())
	if im.Program() != "app" {
		t.Fatalf("program = %q, want app (first mapping basename)", im.Program())
	}
	ms := im.Metrics()
	if len(ms) != 2 || ms[0].Name != "samples" || ms[1].Name != "cpu" ||
		ms[0].Period != 1 || ms[1].Unit != "nanoseconds" {
		t.Fatalf("metrics = %+v", ms)
	}
	tree, err := source.BuildTree(im)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Root.Children) != 1 {
		t.Fatalf("want one entry frame, got %d", len(tree.Root.Children))
	}
	main := tree.Root.Children[0]
	if main.Kind != core.KindFrame || main.Key.Name.String() != "main.main" ||
		main.Key.Line != 10 || main.Key.File.String() != "main.go" {
		t.Fatalf("entry frame = %v", main.Key)
	}
	if main.Mod.String() != "/bin/app" {
		t.Fatalf("entry frame module = %q", main.Mod.String())
	}
	var work, mainStmt *core.Node
	for _, c := range main.Children {
		switch c.Kind {
		case core.KindFrame:
			work = c
		case core.KindStmt:
			mainStmt = c
		}
	}
	// The called work and the work body inlined into main share one
	// function identity, so they fuse into a single frame — pprof's own
	// granularity. The first-seen call site (main.go:12) wins.
	if work == nil || work.Key.Name.String() != "main.work" {
		t.Fatalf("missing work frame under main: %+v", main.Children)
	}
	if work.CallLine != 12 || work.CallFile.String() != "main.go" {
		t.Fatalf("work call site = %s:%d, want main.go:12", work.CallFile.String(), work.CallLine)
	}
	if mainStmt == nil || mainStmt.Key.Line != 12 || mainStmt.Key.File.String() != "main.go" {
		t.Fatalf("missing main.go:12 statement under main")
	}
	// Both work leaves land as statements of the fused frame.
	stmt := map[int]*core.Node{}
	for _, c := range work.Children {
		if c.Kind == core.KindStmt {
			stmt[c.Key.Line] = c
		}
	}
	if len(stmt) != 2 || stmt[25] == nil || stmt[26] == nil {
		t.Fatalf("work children = %+v, want statements at lines 25 and 26", work.Children)
	}
	if got := stmt[25].Base.Get(0); got != 3 {
		t.Fatalf("samples at work.go:25 = %v, want 3", got)
	}
	if got := stmt[26].Base.Get(1); got != 20 {
		t.Fatalf("cpu at work.go:26 = %v, want 20", got)
	}
	// Inclusive cost rolls up to the entry frame.
	if got := main.Incl.Get(1); got != 60 {
		t.Fatalf("inclusive cpu at main = %v, want 60", got)
	}
}

// TestRoundTrip is the pprof round-trip equivalence lock: a pprof-shaped
// database (imported foreign profile) exports and re-imports to a
// byte-identical v2/v3 database, and a second export reproduces the first
// export's bytes (fixed point).
func TestRoundTrip(t *testing.T) {
	im1 := importBytes(t, foreignProto().marshal())
	tree1, err := source.BuildTree(im1)
	if err != nil {
		t.Fatal(err)
	}
	e1 := &expdb.Experiment{Program: im1.Program(), NRanks: im1.NRanks(), Tree: tree1}

	var pb1 bytes.Buffer
	if err := Export(e1, &pb1); err != nil {
		t.Fatal(err)
	}
	im2 := importBytes(t, pb1.Bytes())
	if im2.Program() != im1.Program() || im2.NRanks() != im1.NRanks() {
		t.Fatalf("identity drifted: %q/%d vs %q/%d",
			im2.Program(), im2.NRanks(), im1.Program(), im1.NRanks())
	}
	tree2, err := source.BuildTree(im2)
	if err != nil {
		t.Fatal(err)
	}
	e2 := &expdb.Experiment{Program: im2.Program(), NRanks: im2.NRanks(), Tree: tree2}

	for _, f := range []struct {
		name  string
		write func(*expdb.Experiment, *bytes.Buffer) error
	}{
		{"v2", func(e *expdb.Experiment, b *bytes.Buffer) error { return e.WriteBinary(b) }},
		{"v3", func(e *expdb.Experiment, b *bytes.Buffer) error { return e.WriteBinaryV3(b) }},
	} {
		var b1, b2 bytes.Buffer
		if err := f.write(e1, &b1); err != nil {
			t.Fatal(err)
		}
		if err := f.write(e2, &b2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Errorf("%s database bytes drifted across pprof round-trip", f.name)
		}
	}

	var pb2 bytes.Buffer
	if err := Export(e2, &pb2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb1.Bytes(), pb2.Bytes()) {
		t.Error("exported pprof bytes are not a fixed point")
	}
}

// heapSink keeps test allocations live so the heap profiler records them.
var heapSink [][]byte

// writeHeapProfile allocates enough to guarantee heap samples (the
// profiler samples roughly one allocation per 512 KiB), then captures the
// process heap profile.
func writeHeapProfile(tb testing.TB) []byte {
	tb.Helper()
	heapSink = heapSink[:0]
	for i := 0; i < 64; i++ {
		heapSink = append(heapSink, make([]byte, 1<<20))
	}
	runtime.GC()
	var heap bytes.Buffer
	if err := pprof.WriteHeapProfile(&heap); err != nil {
		tb.Fatal(err)
	}
	heapSink = nil
	return heap.Bytes()
}

// TestImportReal imports a genuine Go runtime heap profile of this test
// process.
func TestImportReal(t *testing.T) {
	heap := bytes.NewBuffer(writeHeapProfile(t))
	im := importBytes(t, heap.Bytes())
	if len(im.p.samples) == 0 {
		t.Fatal("heap profile recorded no samples despite 64 MiB of live allocations")
	}
	tree, err := source.BuildTree(im)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Root.Children) == 0 {
		t.Fatal("heap profile produced an empty tree")
	}
	if len(im.Metrics()) != 4 {
		t.Fatalf("heap profile metrics = %+v, want 4 sample types", im.Metrics())
	}
	// The whole heap profile must be attributed: root inclusive equals the
	// sum of sample values for each column.
	var want [4]float64
	for i := range im.p.samples {
		for j, v := range im.p.samples[i].values {
			want[j] += float64(v)
		}
	}
	for j := range want {
		var got float64
		for _, c := range tree.Root.Children {
			got += c.Incl.Get(j)
		}
		if got != want[j] {
			t.Errorf("column %d: attributed %v, profile total %v", j, got, want[j])
		}
	}
}

// TestImportErrors checks malformed inputs fail cleanly.
func TestImportErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":          {},
		"garbage":        []byte("not a profile"),
		"gzip magic":     {0x1f, 0x8b},
		"truncated":      foreignProto().marshal()[:10],
		"no sample type": (&proto{strings: []string{""}}).marshal(),
	}
	for name, b := range cases {
		if _, err := Import(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: Import succeeded, want error", name)
		}
	}
}
