package pprofio

import (
	"fmt"
	"io"
	"path"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/intern"
	"repro/internal/source"
)

// Comment keys and system_name markers of the lossless "repro:" encoding
// (DESIGN.md §16). A profile carrying the program comment is one of our
// own exports and imports structurally; anything else imports at pprof
// granularity.
const (
	commentProgram = "repro:program="
	commentNRanks  = "repro:nranks="
	commentPeriods = "repro:periods="

	markFrame    = "repro:frame"
	markLoop     = "repro:loop"
	markAlien    = "repro:alien"
	markStmt     = "repro:stmt"
	markCallFile = "repro:callfile"
	markNoSource = ";nosource"
)

// Profile is an imported pprof profile, ready to stream into a tree via
// source.Build.
type Profile struct {
	p       *proto
	program string
	nranks  int
	repro   bool // carries the lossless "repro:" encoding
	metrics []source.Metric
}

var _ source.Profile = (*Profile)(nil)

// Import reads one pprof profile (gzipped or raw profile.proto) and wraps
// it as a format-neutral source. All cross-references are validated here;
// the sample stream cannot fail on malformed input afterwards.
func Import(r io.Reader) (*Profile, error) {
	p, err := parseProto(r)
	if err != nil {
		return nil, err
	}
	im := &Profile{p: p, nranks: 1}
	var periods string
	for _, c := range p.comments {
		s := p.str(c)
		switch {
		case strings.HasPrefix(s, commentProgram):
			im.program = strings.TrimPrefix(s, commentProgram)
			im.repro = true
		case strings.HasPrefix(s, commentNRanks):
			if n, err := strconv.Atoi(strings.TrimPrefix(s, commentNRanks)); err == nil && n > 0 {
				im.nranks = n
			}
		case strings.HasPrefix(s, commentPeriods):
			periods = strings.TrimPrefix(s, commentPeriods)
		}
	}
	if im.program == "" {
		// Foreign profile: name it after the main binary (Go's pprof
		// writer puts the executable in the first mapping).
		if len(p.mappings) > 0 {
			im.program = path.Base(p.str(p.mappings[0].filename))
		}
		if im.program == "" || im.program == "." || im.program == "/" {
			im.program = "pprof"
		}
	}
	im.metrics = make([]source.Metric, len(p.sampleTypes))
	for i, vt := range p.sampleTypes {
		name := p.str(vt.typ)
		if name == "" {
			name = fmt.Sprintf("values%d", i)
		}
		im.metrics[i] = source.Metric{Name: name, Unit: p.str(vt.unit), Period: 1}
	}
	if periods != "" {
		// Positional per-column periods, restoring what pprof's single
		// profile-wide period cannot carry.
		for i, f := range strings.Split(periods, ",") {
			if i >= len(im.metrics) {
				break
			}
			if v, err := strconv.ParseUint(f, 10, 64); err == nil && v > 0 {
				im.metrics[i].Period = v
			}
		}
	}
	if im.repro {
		if err := im.checkRepro(); err != nil {
			return nil, err
		}
	}
	return im, nil
}

// checkRepro validates the structural invariants of the lossless encoding
// beyond what general pprof validation covers, so the repro-mode sample
// walk cannot fail mid-stream.
func (im *Profile) checkRepro() error {
	for i := range im.p.locations {
		l := &im.p.locations[i]
		main, _, ok := im.reproLines(l)
		if !ok {
			return fmt.Errorf("pprofio: repro-encoded location %d has no scope line", l.id)
		}
		fn := im.p.fnByID[main.functionID]
		if kindOfMark(im.p.str(fn.systemName)) == core.KindRoot {
			return fmt.Errorf("pprofio: repro-encoded location %d has unknown scope marker %q",
				l.id, im.p.str(fn.systemName))
		}
	}
	return nil
}

// reproLines splits a repro-encoded location's lines into the scope line
// and the optional call-file line.
func (im *Profile) reproLines(l *location) (main, callFile *line, ok bool) {
	for i := range l.lines {
		ln := &l.lines[i]
		if ln.functionID == 0 {
			continue
		}
		fn := im.p.fnByID[ln.functionID]
		if im.p.str(fn.systemName) == markCallFile {
			callFile = ln
		} else if main == nil {
			main = ln
		}
	}
	return main, callFile, main != nil
}

// kindOfMark maps a system_name marker to the scope kind it encodes;
// KindRoot (never encoded) means "not a marker".
func kindOfMark(mark string) core.Kind {
	switch strings.TrimSuffix(mark, markNoSource) {
	case markFrame:
		return core.KindFrame
	case markLoop:
		return core.KindLoop
	case markAlien:
		return core.KindAlien
	case markStmt:
		return core.KindStmt
	}
	return core.KindRoot
}

// Program names the measured program.
func (im *Profile) Program() string { return im.program }

// NRanks reports how many processes the exporting database had merged
// (from the repro:nranks comment); 1 for foreign profiles.
func (im *Profile) NRanks() int { return im.nranks }

// Identity is always the zero identity: a pprof profile carries no
// rank/thread structure (a merged export is a summed profile).
func (im *Profile) Identity() source.Identity { return source.Identity{} }

// Metrics describes one raw column per pprof sample type.
func (im *Profile) Metrics() []source.Metric {
	out := make([]source.Metric, len(im.metrics))
	copy(out, im.metrics)
	return out
}

// Samples streams the profile's samples in file order — the deterministic
// order that fixes tree creation order.
func (im *Profile) Samples(emit func(path []source.Scope, values []float64) error) error {
	var scopes []source.Scope
	values := make([]float64, len(im.metrics))
	for i := range im.p.samples {
		s := &im.p.samples[i]
		scopes = scopes[:0]
		if im.repro {
			scopes = im.reproPath(scopes, s)
		} else {
			scopes = im.foreignPath(scopes, s)
		}
		for j, v := range s.values {
			values[j] = float64(v)
		}
		if err := emit(scopes, values); err != nil {
			return err
		}
	}
	return nil
}

// reproPath rebuilds the exact scope chain a repro export encoded:
// one location per tree node, kind in the function's system_name, id in
// the address, call line in the column, call file in the marker line.
func (im *Profile) reproPath(scopes []source.Scope, s *sample) []source.Scope {
	for i := len(s.locs) - 1; i >= 0; i-- {
		l := im.p.locByID[s.locs[i]]
		main, callFile, _ := im.reproLines(l)
		fn := im.p.fnByID[main.functionID]
		mark := im.p.str(fn.systemName)
		kind := kindOfMark(mark)
		sc := source.Scope{
			Key: core.Key{
				Kind: kind,
				File: intern.S(im.p.str(fn.filename)),
				Line: int(main.line),
				ID:   l.address,
			},
			NoSource: strings.HasSuffix(mark, markNoSource),
			CallLine: int(main.column),
		}
		if kind == core.KindFrame || kind == core.KindAlien {
			sc.Key.Name = intern.S(im.p.str(fn.name))
		}
		if l.mappingID != 0 {
			sc.Mod = intern.S(im.p.str(im.p.mapByID[l.mappingID].filename))
		}
		if callFile != nil {
			cfn := im.p.fnByID[callFile.functionID]
			sc.CallFile = intern.S(im.p.str(cfn.filename))
		}
		scopes = append(scopes, sc)
	}
	return scopes
}

// foreignPath maps one foreign pprof stack at pprof's own granularity:
// every symbolized line becomes a Frame keyed by function identity (no
// call-instruction disambiguation — pprof merges call sites within a
// caller), with the caller's line as the frame's call site, and the leaf
// line lands as a Stmt the way correlate attributes sample PCs. Inlined
// bodies (multiple lines per location) become ordinary frames, matching
// how Go's pprof presents them.
func (im *Profile) foreignPath(scopes []source.Scope, s *sample) []source.Scope {
	var callLine int
	var callFile intern.Sym
	var leafFile intern.Sym
	var leafLine int
	leafNoSource := true
	for i := len(s.locs) - 1; i >= 0; i-- {
		l := im.p.locByID[s.locs[i]]
		var mod intern.Sym
		if l.mappingID != 0 {
			mod = intern.S(im.p.str(im.p.mapByID[l.mappingID].filename))
		}
		if len(l.lines) == 0 {
			// Unsymbolized address: a frame named after it, fused across
			// samples by name.
			name := fmt.Sprintf("0x%x", l.address)
			scopes = append(scopes, source.Scope{
				Key:      core.Key{Kind: core.KindFrame, Name: intern.S(name)},
				NoSource: true,
				Mod:      mod,
				CallLine: callLine,
				CallFile: callFile,
			})
			callLine, callFile = 0, 0
			leafFile, leafLine, leafNoSource = 0, 0, true
			continue
		}
		// lines[last] is the outermost caller an inlined body was folded
		// into; walk callers first.
		for j := len(l.lines) - 1; j >= 0; j-- {
			ln := &l.lines[j]
			var fn *function
			if ln.functionID != 0 {
				fn = im.p.fnByID[ln.functionID]
			}
			var name, file string
			var startLine int
			if fn != nil {
				name = im.p.str(fn.name)
				file = im.p.str(fn.filename)
				startLine = int(fn.startLine)
			}
			if name == "" {
				name = fmt.Sprintf("0x%x", l.address)
			}
			fileSym := intern.S(file)
			scopes = append(scopes, source.Scope{
				Key: core.Key{
					Kind: core.KindFrame,
					Name: intern.S(name),
					File: fileSym,
					Line: startLine,
				},
				NoSource: file == "",
				Mod:      mod,
				CallLine: callLine,
				CallFile: callFile,
			})
			callLine, callFile = int(ln.line), fileSym
			leafFile, leafLine, leafNoSource = fileSym, int(ln.line), file == ""
		}
	}
	if len(scopes) == 0 {
		// A sample with no locations still carries cost; attribute it to
		// a synthetic frame rather than dropping it.
		scopes = append(scopes, source.Scope{
			Key:      core.Key{Kind: core.KindFrame, Name: intern.S("<unknown>")},
			NoSource: true,
		})
	}
	if leafLine != 0 || leafFile != 0 {
		scopes = append(scopes, source.Scope{
			Key:      core.Key{Kind: core.KindStmt, File: leafFile, Line: leafLine},
			NoSource: leafNoSource,
		})
	}
	return scopes
}
