package pprofio

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// maxProfileBytes caps the decompressed size of an imported profile, so a
// tiny gzip bomb cannot exhaust memory. 256 MiB holds any realistic
// profile by orders of magnitude.
const maxProfileBytes = 256 << 20

// valueType is profile.proto's ValueType: string-table indices for a
// sample dimension's type and unit.
type valueType struct {
	typ, unit int64
}

// sample is one attributed stack: location ids leaf-first, one value per
// sample type.
type sample struct {
	locs   []uint64
	values []int64
}

// mapping is the subset of profile.proto's Mapping this bridge uses: the
// object file (load module) name.
type mapping struct {
	id       uint64
	filename int64
}

// location is one instrumented address; lines is its symbolization,
// innermost first (subsequent entries are the callers an inlined body was
// folded into).
type location struct {
	id        uint64
	mappingID uint64
	address   uint64
	lines     []line
}

type line struct {
	functionID uint64
	line       int64
	column     int64
}

type function struct {
	id         uint64
	name       int64
	systemName int64
	filename   int64
	startLine  int64
}

// proto is a decoded profile.proto message.
type proto struct {
	sampleTypes       []valueType
	samples           []sample
	mappings          []mapping
	locations         []location
	functions         []function
	strings           []string
	timeNanos         int64
	durationNanos     int64
	periodType        valueType
	period            int64
	comments          []int64
	defaultSampleType int64

	// lookup tables built by validate
	locByID map[uint64]*location
	fnByID  map[uint64]*function
	mapByID map[uint64]*mapping
}

// str resolves a string-table index; validate has already bounds-checked
// every index the decoder stored.
func (p *proto) str(i int64) string {
	if i <= 0 || int(i) >= len(p.strings) {
		return ""
	}
	return p.strings[i]
}

// parseProto decodes one profile.proto message, transparently gunzipping
// (pprof files are conventionally gzipped, but raw messages are legal).
func parseProto(r io.Reader) (*proto, error) {
	raw, err := readAll(r)
	if err != nil {
		return nil, err
	}
	if len(raw) >= 2 && raw[0] == 0x1f && raw[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("pprofio: gzip: %w", err)
		}
		raw, err = readAll(zr)
		if err != nil {
			return nil, fmt.Errorf("pprofio: gzip: %w", err)
		}
		if err := zr.Close(); err != nil {
			return nil, fmt.Errorf("pprofio: gzip: %w", err)
		}
	}
	p := &proto{strings: []string{""}}
	d := &dec{b: raw}
	first := true
	for !d.done() {
		field, wt, err := d.tag()
		if err != nil {
			return nil, err
		}
		switch field {
		case fProfileSampleType:
			vt, err := subValueType(d, wt)
			if err != nil {
				return nil, err
			}
			p.sampleTypes = append(p.sampleTypes, vt)
		case fProfileSample:
			s, err := subSample(d, wt)
			if err != nil {
				return nil, err
			}
			p.samples = append(p.samples, s)
		case fProfileMapping:
			m, err := subMapping(d, wt)
			if err != nil {
				return nil, err
			}
			p.mappings = append(p.mappings, m)
		case fProfileLocation:
			l, err := subLocation(d, wt)
			if err != nil {
				return nil, err
			}
			p.locations = append(p.locations, l)
		case fProfileFunction:
			f, err := subFunction(d, wt)
			if err != nil {
				return nil, err
			}
			p.functions = append(p.functions, f)
		case fProfileStringTable:
			b, err := sub(d, wt)
			if err != nil {
				return nil, err
			}
			// Index 0 must be the empty string; tolerate writers that
			// emit it explicitly.
			if first && len(b) == 0 {
				first = false
				continue
			}
			first = false
			p.strings = append(p.strings, string(b))
		case fProfileTimeNanos:
			if p.timeNanos, err = subInt(d, wt); err != nil {
				return nil, err
			}
		case fProfileDurationNanos:
			if p.durationNanos, err = subInt(d, wt); err != nil {
				return nil, err
			}
		case fProfilePeriodType:
			if p.periodType, err = subValueType(d, wt); err != nil {
				return nil, err
			}
		case fProfilePeriod:
			if p.period, err = subInt(d, wt); err != nil {
				return nil, err
			}
		case fProfileComment:
			if p.comments, err = int64s(p.comments, wt, d); err != nil {
				return nil, err
			}
		case fProfileDefaultSampleType:
			if p.defaultSampleType, err = subInt(d, wt); err != nil {
				return nil, err
			}
		default:
			if err := d.skip(wt); err != nil {
				return nil, err
			}
		}
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// validate checks every cross-reference once, so the streaming walk over
// samples never has to handle dangling ids or out-of-range string indices.
func (p *proto) validate() error {
	if len(p.sampleTypes) == 0 {
		return fmt.Errorf("pprofio: profile declares no sample types")
	}
	inStr := func(i int64) bool { return i >= 0 && int(i) < len(p.strings) }
	for _, vt := range p.sampleTypes {
		if !inStr(vt.typ) || !inStr(vt.unit) {
			return fmt.Errorf("pprofio: sample type has out-of-range string index")
		}
	}
	if !inStr(p.periodType.typ) || !inStr(p.periodType.unit) {
		return fmt.Errorf("pprofio: period type has out-of-range string index")
	}
	for _, c := range p.comments {
		if !inStr(c) {
			return fmt.Errorf("pprofio: comment has out-of-range string index")
		}
	}
	p.mapByID = make(map[uint64]*mapping, len(p.mappings))
	for i := range p.mappings {
		m := &p.mappings[i]
		if m.id == 0 {
			return fmt.Errorf("pprofio: mapping with id 0")
		}
		if !inStr(m.filename) {
			return fmt.Errorf("pprofio: mapping %d has out-of-range filename", m.id)
		}
		if _, dup := p.mapByID[m.id]; dup {
			return fmt.Errorf("pprofio: duplicate mapping id %d", m.id)
		}
		p.mapByID[m.id] = m
	}
	p.fnByID = make(map[uint64]*function, len(p.functions))
	for i := range p.functions {
		f := &p.functions[i]
		if f.id == 0 {
			return fmt.Errorf("pprofio: function with id 0")
		}
		if !inStr(f.name) || !inStr(f.systemName) || !inStr(f.filename) {
			return fmt.Errorf("pprofio: function %d has out-of-range string index", f.id)
		}
		if _, dup := p.fnByID[f.id]; dup {
			return fmt.Errorf("pprofio: duplicate function id %d", f.id)
		}
		p.fnByID[f.id] = f
	}
	p.locByID = make(map[uint64]*location, len(p.locations))
	for i := range p.locations {
		l := &p.locations[i]
		if l.id == 0 {
			return fmt.Errorf("pprofio: location with id 0")
		}
		if l.mappingID != 0 && p.mapByID[l.mappingID] == nil {
			return fmt.Errorf("pprofio: location %d references unknown mapping %d", l.id, l.mappingID)
		}
		for _, ln := range l.lines {
			if ln.functionID != 0 && p.fnByID[ln.functionID] == nil {
				return fmt.Errorf("pprofio: location %d references unknown function %d", l.id, ln.functionID)
			}
		}
		if _, dup := p.locByID[l.id]; dup {
			return fmt.Errorf("pprofio: duplicate location id %d", l.id)
		}
		p.locByID[l.id] = l
	}
	for i := range p.samples {
		s := &p.samples[i]
		if len(s.values) != len(p.sampleTypes) {
			return fmt.Errorf("pprofio: sample %d has %d values, profile declares %d sample types",
				i, len(s.values), len(p.sampleTypes))
		}
		for _, id := range s.locs {
			if p.locByID[id] == nil {
				return fmt.Errorf("pprofio: sample %d references unknown location %d", i, id)
			}
		}
	}
	return nil
}

// sub reads one length-delimited submessage payload.
func sub(d *dec, wt int) ([]byte, error) {
	if wt != wtLen {
		return nil, fmt.Errorf("pprofio: message field with wire type %d", wt)
	}
	return d.bytes()
}

func subInt(d *dec, wt int) (int64, error) {
	if wt != wtVarint {
		return 0, fmt.Errorf("pprofio: scalar field with wire type %d", wt)
	}
	v, err := d.varint()
	return int64(v), err
}

func subValueType(d *dec, wt int) (valueType, error) {
	b, err := sub(d, wt)
	if err != nil {
		return valueType{}, err
	}
	var vt valueType
	sd := &dec{b: b}
	for !sd.done() {
		field, w, err := sd.tag()
		if err != nil {
			return vt, err
		}
		switch field {
		case fValueTypeType:
			if vt.typ, err = subInt(sd, w); err != nil {
				return vt, err
			}
		case fValueTypeUnit:
			if vt.unit, err = subInt(sd, w); err != nil {
				return vt, err
			}
		default:
			if err := sd.skip(w); err != nil {
				return vt, err
			}
		}
	}
	return vt, nil
}

func subSample(d *dec, wt int) (sample, error) {
	b, err := sub(d, wt)
	if err != nil {
		return sample{}, err
	}
	var s sample
	sd := &dec{b: b}
	for !sd.done() {
		field, w, err := sd.tag()
		if err != nil {
			return s, err
		}
		switch field {
		case fSampleLocationID:
			if s.locs, err = uint64s(s.locs, w, sd); err != nil {
				return s, err
			}
		case fSampleValue:
			if s.values, err = int64s(s.values, w, sd); err != nil {
				return s, err
			}
		default:
			if err := sd.skip(w); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

func subMapping(d *dec, wt int) (mapping, error) {
	b, err := sub(d, wt)
	if err != nil {
		return mapping{}, err
	}
	var m mapping
	sd := &dec{b: b}
	for !sd.done() {
		field, w, err := sd.tag()
		if err != nil {
			return m, err
		}
		switch field {
		case fMappingID:
			v, err := subInt(sd, w)
			if err != nil {
				return m, err
			}
			m.id = uint64(v)
		case fMappingFilename:
			if m.filename, err = subInt(sd, w); err != nil {
				return m, err
			}
		default:
			if err := sd.skip(w); err != nil {
				return m, err
			}
		}
	}
	return m, nil
}

func subLocation(d *dec, wt int) (location, error) {
	b, err := sub(d, wt)
	if err != nil {
		return location{}, err
	}
	var l location
	sd := &dec{b: b}
	for !sd.done() {
		field, w, err := sd.tag()
		if err != nil {
			return l, err
		}
		switch field {
		case fLocationID:
			v, err := subInt(sd, w)
			if err != nil {
				return l, err
			}
			l.id = uint64(v)
		case fLocationMappingID:
			v, err := subInt(sd, w)
			if err != nil {
				return l, err
			}
			l.mappingID = uint64(v)
		case fLocationAddress:
			v, err := subInt(sd, w)
			if err != nil {
				return l, err
			}
			l.address = uint64(v)
		case fLocationLine:
			ln, err := subLine(sd, w)
			if err != nil {
				return l, err
			}
			l.lines = append(l.lines, ln)
		default:
			if err := sd.skip(w); err != nil {
				return l, err
			}
		}
	}
	return l, nil
}

func subLine(d *dec, wt int) (line, error) {
	b, err := sub(d, wt)
	if err != nil {
		return line{}, err
	}
	var ln line
	sd := &dec{b: b}
	for !sd.done() {
		field, w, err := sd.tag()
		if err != nil {
			return ln, err
		}
		switch field {
		case fLineFunctionID:
			v, err := subInt(sd, w)
			if err != nil {
				return ln, err
			}
			ln.functionID = uint64(v)
		case fLineLine:
			if ln.line, err = subInt(sd, w); err != nil {
				return ln, err
			}
		case fLineColumn:
			if ln.column, err = subInt(sd, w); err != nil {
				return ln, err
			}
		default:
			if err := sd.skip(w); err != nil {
				return ln, err
			}
		}
	}
	return ln, nil
}

func subFunction(d *dec, wt int) (function, error) {
	b, err := sub(d, wt)
	if err != nil {
		return function{}, err
	}
	var f function
	sd := &dec{b: b}
	for !sd.done() {
		field, w, err := sd.tag()
		if err != nil {
			return f, err
		}
		switch field {
		case fFunctionID:
			v, err := subInt(sd, w)
			if err != nil {
				return f, err
			}
			f.id = uint64(v)
		case fFunctionName:
			if f.name, err = subInt(sd, w); err != nil {
				return f, err
			}
		case fFunctionSystemName:
			if f.systemName, err = subInt(sd, w); err != nil {
				return f, err
			}
		case fFunctionFilename:
			if f.filename, err = subInt(sd, w); err != nil {
				return f, err
			}
		case fFunctionStartLine:
			if f.startLine, err = subInt(sd, w); err != nil {
				return f, err
			}
		default:
			if err := sd.skip(w); err != nil {
				return f, err
			}
		}
	}
	return f, nil
}

// readAll is io.ReadAll with the decompression-bomb cap.
func readAll(r io.Reader) ([]byte, error) {
	b, err := io.ReadAll(io.LimitReader(r, maxProfileBytes+1))
	if err != nil {
		return nil, fmt.Errorf("pprofio: read: %w", err)
	}
	if len(b) > maxProfileBytes {
		return nil, fmt.Errorf("pprofio: profile exceeds %d byte limit", maxProfileBytes)
	}
	return b, nil
}

// marshal encodes the message (unconditionally writing the string table,
// whose index 0 empty string every consumer expects).
func (p *proto) marshal() []byte {
	var e enc
	for _, vt := range p.sampleTypes {
		e.bytesField(fProfileSampleType, marshalValueType(vt))
	}
	for _, s := range p.samples {
		var se enc
		se.packedUints(fSampleLocationID, s.locs)
		se.packedField(fSampleValue, s.values)
		e.bytesField(fProfileSample, se.b)
	}
	for _, m := range p.mappings {
		var me enc
		me.uintField(fMappingID, m.id)
		me.intField(fMappingFilename, m.filename)
		e.bytesField(fProfileMapping, me.b)
	}
	for _, l := range p.locations {
		var le enc
		le.uintField(fLocationID, l.id)
		le.uintField(fLocationMappingID, l.mappingID)
		le.uintField(fLocationAddress, l.address)
		for _, ln := range l.lines {
			var lne enc
			lne.uintField(fLineFunctionID, ln.functionID)
			lne.intField(fLineLine, ln.line)
			lne.intField(fLineColumn, ln.column)
			le.bytesField(fLocationLine, lne.b)
		}
		e.bytesField(fProfileLocation, le.b)
	}
	for _, f := range p.functions {
		var fe enc
		fe.uintField(fFunctionID, f.id)
		fe.intField(fFunctionName, f.name)
		fe.intField(fFunctionSystemName, f.systemName)
		fe.intField(fFunctionFilename, f.filename)
		fe.intField(fFunctionStartLine, f.startLine)
		e.bytesField(fProfileFunction, fe.b)
	}
	for _, s := range p.strings {
		e.bytesField(fProfileStringTable, []byte(s))
	}
	e.intField(fProfileTimeNanos, p.timeNanos)
	e.intField(fProfileDurationNanos, p.durationNanos)
	if p.periodType != (valueType{}) {
		e.bytesField(fProfilePeriodType, marshalValueType(p.periodType))
	}
	e.intField(fProfilePeriod, p.period)
	for _, c := range p.comments {
		e.intField(fProfileComment, c)
	}
	e.intField(fProfileDefaultSampleType, p.defaultSampleType)
	return e.b
}

func marshalValueType(vt valueType) []byte {
	var e enc
	e.intField(fValueTypeType, vt.typ)
	e.intField(fValueTypeUnit, vt.unit)
	return e.b
}

// stringTable interns strings for encoding, preserving first-use order so
// marshalled bytes are deterministic.
type stringTable struct {
	list []string
	idx  map[string]int64
}

func newStringTable() *stringTable {
	return &stringTable{list: []string{""}, idx: map[string]int64{"": 0}}
}

func (st *stringTable) id(s string) int64 {
	if i, ok := st.idx[s]; ok {
		return i
	}
	i := int64(len(st.list))
	st.list = append(st.list, s)
	st.idx[s] = i
	return i
}
