package pprofio

import (
	"compress/gzip"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/expdb"
	"repro/internal/metric"
)

// Export writes an opened experiment database as a gzipped pprof profile.
// Raw metric columns become sample types (summary/derived columns are
// recomputable presentation and are not exported); every tree scope
// becomes one location, visited in child order, and each scope holding
// directly attributed cost — plus every leaf, so empty paths survive —
// becomes one sample with its leaf-first location chain. The "repro:"
// markers make the encoding lossless: importing an export rebuilds a
// byte-identical tree and metric registry (the round-trip lock), while
// foreign pprof tools still see an ordinary symbolized profile.
//
// The output is deterministic: ids follow tree child order, the string
// table is first-use ordered, and no timestamps are recorded.
func Export(e *expdb.Experiment, w io.Writer) error {
	var raw []*metric.Desc
	for _, d := range e.Tree.Reg.Columns() {
		if d.Kind == metric.Raw {
			raw = append(raw, d)
		}
	}
	if len(raw) == 0 {
		return fmt.Errorf("pprofio: experiment has no raw metric columns to export")
	}

	st := newStringTable()
	p := &proto{strings: nil} // string table attached at the end
	periods := make([]string, len(raw))
	for i, d := range raw {
		p.sampleTypes = append(p.sampleTypes, valueType{typ: st.id(d.Name), unit: st.id(d.Unit)})
		periods[i] = strconv.FormatUint(d.Period, 10)
	}
	p.periodType = p.sampleTypes[0]
	p.period = int64(raw[0].Period)

	ex := &exporter{
		p:      p,
		st:     st,
		raw:    raw,
		fnIDs:  map[function]uint64{},
		mapIDs: map[int64]uint64{},
	}
	for _, c := range e.Tree.Root.Children {
		ex.node(c, nil)
	}

	p.comments = append(p.comments,
		st.id(commentProgram+e.Program),
		st.id(commentNRanks+strconv.Itoa(e.NRanks)),
		st.id(commentPeriods+strings.Join(periods, ",")))
	p.strings = st.list

	zw := gzip.NewWriter(w)
	if _, err := zw.Write(p.marshal()); err != nil {
		return fmt.Errorf("pprofio: export: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("pprofio: export: %w", err)
	}
	return nil
}

// exporter carries the dedup tables of one Export walk.
type exporter struct {
	p   *proto
	st  *stringTable
	raw []*metric.Desc
	// fnIDs dedups functions by exact content; mapIDs dedups mappings by
	// module name (string table index).
	fnIDs  map[function]uint64
	mapIDs map[int64]uint64
}

// node emits one tree scope as a location (and, when it holds cost or is
// a leaf, a sample) and recurses; chain is the leaf-first location-id
// path of the ancestors.
func (ex *exporter) node(n *core.Node, chain []uint64) {
	locID := uint64(len(ex.p.locations) + 1)
	ex.p.locations = append(ex.p.locations, location{
		id:        locID,
		mappingID: ex.mapping(n),
		address:   n.Key.ID,
		lines:     ex.lines(n),
	})
	chain = append([]uint64{locID}, chain...)

	vals := make([]int64, len(ex.raw))
	hasCost := false
	for i, d := range ex.raw {
		v := n.Base.Get(d.ID)
		vals[i] = int64(math.Round(v))
		if v != 0 {
			hasCost = true
		}
	}
	if hasCost || len(n.Children) == 0 {
		locs := make([]uint64, len(chain))
		copy(locs, chain)
		ex.p.samples = append(ex.p.samples, sample{locs: locs, values: vals})
	}
	for _, c := range n.Children {
		ex.node(c, chain)
	}
}

// lines encodes a scope's identity: the main line carries the scope's
// source line (Line.line), its call-site line (Line.column) and its kind
// (the function's system_name marker); a second marker line carries the
// call-site file when one is recorded.
func (ex *exporter) lines(n *core.Node) []line {
	mark := markFor(n.Kind)
	if n.NoSource {
		mark += markNoSource
	}
	// The display name keeps foreign pprof tools useful on our exports:
	// frames and aliens show their procedure name verbatim (the importer
	// reads it back), loops and statements — which have no name of their
	// own — show their rendered source position.
	name := n.Key.Name.String()
	if n.Kind == core.KindLoop || n.Kind == core.KindStmt {
		name = n.Label()
	}
	lines := []line{{
		functionID: ex.function(function{
			name:       ex.st.id(name),
			systemName: ex.st.id(mark),
			filename:   ex.st.id(n.Key.File.String()),
			startLine:  int64(startLine(n)),
		}),
		line:   int64(n.Key.Line),
		column: int64(n.CallLine),
	}}
	if n.CallFile != 0 {
		lines = append(lines, line{
			functionID: ex.function(function{
				systemName: ex.st.id(markCallFile),
				filename:   ex.st.id(n.CallFile.String()),
			}),
		})
	}
	return lines
}

func markFor(k core.Kind) string {
	switch k {
	case core.KindLoop:
		return markLoop
	case core.KindAlien:
		return markAlien
	case core.KindStmt:
		return markStmt
	}
	return markFrame
}

// startLine gives foreign tools a function start line for frames; the
// importer takes the scope line from Line.line instead.
func startLine(n *core.Node) int {
	if n.Kind == core.KindFrame {
		return n.Key.Line
	}
	return 0
}

// function interns one function message, content-addressed.
func (ex *exporter) function(f function) uint64 {
	if id, ok := ex.fnIDs[f]; ok {
		return id
	}
	id := uint64(len(ex.p.functions) + 1)
	ex.fnIDs[f] = id
	f.id = id
	ex.p.functions = append(ex.p.functions, f)
	return id
}

// mapping interns one load-module mapping; scopes without a module get
// mapping id 0 (unset).
func (ex *exporter) mapping(n *core.Node) uint64 {
	if n.Mod == 0 {
		return 0
	}
	fn := ex.st.id(n.Mod.String())
	if id, ok := ex.mapIDs[fn]; ok {
		return id
	}
	id := uint64(len(ex.p.mappings) + 1)
	ex.p.mappings = append(ex.p.mappings, mapping{id: id, filename: fn})
	ex.mapIDs[fn] = id
	return id
}
