package isa

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/prog"
)

// tinyImage builds a hand-written image with two procedures:
//
//	main: work; call leaf; ret
//	leaf: work; ret
func tinyImage() *Image {
	return &Image{
		Name:    "tiny",
		Base:    0x400000,
		Modules: []string{"tiny.exe"},
		Files:   []FileSym{{Name: "tiny.c", Module: 0}},
		Procs: []ProcSym{
			{Name: "main", File: 0, Line: 1, Start: 0, End: 3},
			{Name: "leaf", File: 0, Line: 10, Start: 3, End: 5},
		},
		Code: []Instr{
			{Op: OpWork, Cost: prog.Cost{Cycles: 5}, File: 0, Line: 2, Inline: NoInline},
			{Op: OpCall, A: 1, File: 0, Line: 3, Inline: NoInline},
			{Op: OpRet, File: 0, Line: 1, Inline: NoInline},
			{Op: OpWork, Cost: prog.Cost{Cycles: 7}, File: 0, Line: 11, Inline: NoInline},
			{Op: OpRet, File: 0, Line: 10, Inline: NoInline},
		},
		EntryProc: 0,
	}
}

func TestImageValidateOK(t *testing.T) {
	if err := tinyImage().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestImageValidateCatchesBadTargets(t *testing.T) {
	im := tinyImage()
	im.Code[1] = Instr{Op: OpJump, Target: 4, File: 0, Inline: NoInline} // escapes main
	if err := im.Validate(); err == nil {
		t.Fatal("escaping branch accepted")
	}

	im = tinyImage()
	im.Code[1] = Instr{Op: OpCall, A: 99, File: 0, Inline: NoInline}
	if err := im.Validate(); err == nil {
		t.Fatal("bad call target accepted")
	}

	im = tinyImage()
	im.Code[0].Inline = 5
	if err := im.Validate(); err == nil {
		t.Fatal("bad inline index accepted")
	}

	im = tinyImage()
	im.EntryProc = 9
	if err := im.Validate(); err == nil {
		t.Fatal("bad entry proc accepted")
	}

	im = tinyImage()
	im.Code[0] = Instr{Op: OpSet, A: NumRegs, B: 0, File: 0, Inline: NoInline}
	im.Exprs = []prog.IntExpr{prog.ConstInt(1)}
	if err := im.Validate(); err == nil {
		t.Fatal("out-of-range register accepted")
	}

	im = tinyImage()
	im.Procs[1].Start = 2 // overlaps main
	if err := im.Validate(); err == nil {
		t.Fatal("overlapping procs accepted")
	}
}

func TestAddrIndexRoundTrip(t *testing.T) {
	im := tinyImage()
	for i := int32(0); i < int32(len(im.Code)); i++ {
		addr := im.Addr(i)
		if got := im.Index(addr); got != i {
			t.Fatalf("Index(Addr(%d)) = %d", i, got)
		}
	}
	if im.Index(im.Base-4) != -1 {
		t.Fatal("address below base resolved")
	}
	if im.Index(im.Addr(int32(len(im.Code)))) != -1 {
		t.Fatal("address past end resolved")
	}
	if im.Index(im.Base+1) != -1 {
		t.Fatal("misaligned address resolved")
	}
}

func TestProcAt(t *testing.T) {
	im := tinyImage()
	cases := []struct{ idx, want int32 }{
		{0, 0}, {1, 0}, {2, 0}, {3, 1}, {4, 1}, {5, -1}, {-1, -1},
	}
	for _, c := range cases {
		if got := im.ProcAt(c.idx); got != c.want {
			t.Errorf("ProcAt(%d) = %d, want %d", c.idx, got, c.want)
		}
	}
}

// Property: ProcAt agrees with a linear scan for arbitrary proc layouts.
func TestProcAtMatchesLinearScan(t *testing.T) {
	f := func(sizes []uint8) bool {
		im := &Image{}
		start := int32(0)
		for i, s := range sizes {
			if i >= 6 {
				break
			}
			end := start + int32(s%7)
			im.Procs = append(im.Procs, ProcSym{Start: start, End: end})
			start = end
		}
		for idx := int32(-1); idx <= start+1; idx++ {
			want := int32(-1)
			for pi := range im.Procs {
				if idx >= im.Procs[pi].Start && idx < im.Procs[pi].End {
					want = int32(pi)
					break
				}
			}
			if im.ProcAt(idx) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProcByName(t *testing.T) {
	im := tinyImage()
	if im.ProcByName("leaf") != 1 || im.ProcByName("main") != 0 || im.ProcByName("ghost") != -1 {
		t.Fatal("ProcByName wrong")
	}
}

func TestInlineChain(t *testing.T) {
	im := tinyImage()
	im.Inlines = []InlineNode{
		{Parent: NoInline, Proc: "outer_inl", File: 0, DeclLine: 20, CallFile: 0, CallLine: 2},
		{Parent: 0, Proc: "inner_inl", File: 0, DeclLine: 30, CallFile: 0, CallLine: 21},
	}
	im.Code[0].Inline = 1
	chain := im.InlineChain(0)
	if len(chain) != 2 || chain[0].Proc != "outer_inl" || chain[1].Proc != "inner_inl" {
		t.Fatalf("InlineChain = %+v", chain)
	}
	if im.InlineChain(1) != nil {
		t.Fatal("non-inlined instruction has a chain")
	}
	if im.InlineChain(99) != nil || im.InlineChain(-1) != nil {
		t.Fatal("out-of-range index has a chain")
	}
}

func TestDisasmFormats(t *testing.T) {
	im := tinyImage()
	im.Exprs = []prog.IntExpr{prog.ConstInt(3)}
	im.Conds = []prog.Cond{prog.ProbCond{P: 0.5}}
	extra := []Instr{
		{Op: OpSet, A: 0, B: 0, File: 0, Line: 1, Inline: NoInline},
		{Op: OpDec, A: 0, File: 0, Line: 1, Inline: NoInline},
		{Op: OpBrZ, A: 0, Target: 0, File: 0, Line: 1, Inline: NoInline},
		{Op: OpBrCond, A: 0, Target: 0, File: 0, Line: 1, Inline: NoInline},
		{Op: OpJump, Target: 0, File: 0, Line: 1, Inline: NoInline},
		{Op: OpBarrier, A: 1, File: NoFile, Inline: NoInline},
	}
	im.Code = append(im.Code, extra...)
	wants := []string{"work", "call leaf", "ret", "work", "ret", "set r0", "dec r0", "brz r0", "brcond c#0", "jump", "barrier #1"}
	for i, w := range wants {
		if got := im.Disasm(int32(i)); !strings.Contains(got, w) {
			t.Errorf("Disasm(%d) = %q, want substring %q", i, got, w)
		}
	}
	if !strings.Contains(im.Disasm(99), "out of range") {
		t.Error("Disasm out-of-range not flagged")
	}
}

func TestOpString(t *testing.T) {
	ops := []Op{OpWork, OpSet, OpDec, OpBrZ, OpBrCond, OpJump, OpCall, OpRet, OpBarrier}
	seen := map[string]bool{}
	for _, op := range ops {
		s := op.String()
		if s == "" || seen[s] {
			t.Fatalf("Op %d has bad or duplicate name %q", op, s)
		}
		seen[s] = true
	}
	if !strings.Contains(Op(200).String(), "200") {
		t.Fatal("unknown op should include its number")
	}
}

func TestInlineChainIDsAndDepth(t *testing.T) {
	im := tinyImage()
	im.Inlines = []InlineNode{
		{Parent: NoInline, Proc: "outer"},
		{Parent: 0, Proc: "inner"},
	}
	im.Code[0].Inline = 1
	ids := im.InlineChainIDs(0)
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Fatalf("InlineChainIDs = %v", ids)
	}
	if im.InlineChainIDs(1) != nil {
		t.Fatal("non-inlined instruction has IDs")
	}
	if im.InlineChainIDs(-1) != nil || im.InlineChainIDs(99) != nil {
		t.Fatal("out-of-range index has IDs")
	}
	if im.InlineDepth(1) != 2 || im.InlineDepth(0) != 1 || im.InlineDepth(NoInline) != 0 {
		t.Fatal("InlineDepth wrong")
	}
}

func TestValidateBadFileAndInlineParent(t *testing.T) {
	im := tinyImage()
	im.Code[0].File = 7
	if err := im.Validate(); err == nil {
		t.Fatal("bad file index accepted")
	}
	im = tinyImage()
	im.Files[0].Module = 9
	if err := im.Validate(); err == nil {
		t.Fatal("bad module index accepted")
	}
	im = tinyImage()
	im.Inlines = []InlineNode{{Parent: 5}}
	if err := im.Validate(); err == nil {
		t.Fatal("forward inline parent accepted")
	}
	im = tinyImage()
	im.Code[0] = Instr{Op: OpBrCond, A: 3, Target: 1, File: 0, Inline: NoInline}
	if err := im.Validate(); err == nil {
		t.Fatal("bad cond index accepted")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	a := tinyImage()
	if a.Fingerprint() == 0 {
		t.Fatal("zero fingerprint")
	}
	if a.Fingerprint() != tinyImage().Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
	b := tinyImage()
	b.Code[0].Cost.Cycles++
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("cost change not detected")
	}
	c := tinyImage()
	c.Procs[0].Name = "other"
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("symbol change not detected")
	}
	d := tinyImage()
	d.Code[1].Target = 2
	if a.Fingerprint() == d.Fingerprint() {
		t.Fatal("control-flow change not detected")
	}
}
