// Package isa defines the synthetic instruction set and load-image format
// produced by lowering a prog.Program. It substitutes for real machine code:
// the execution simulator (internal/sim) interprets it, the sampler unwinds
// it by return address, and structure recovery (internal/cfg,
// internal/structfile) analyzes its control flow — the same division of
// labor HPCToolkit has between hpcrun and hpcstruct on native binaries.
//
// The ISA is a tiny register machine. Each procedure frame has a private
// register file used only for loop counters; control flow is explicit
// (conditional branches and jumps), so loop structure is genuinely
// *recovered* from the instruction stream by dominator analysis rather than
// copied from the source model. Every instruction carries a source line and
// an optional inline-provenance record, mirroring DWARF line and inline
// tables.
package isa

import (
	"fmt"

	"repro/internal/prog"
)

// Op enumerates instruction opcodes.
type Op uint8

const (
	// OpWork charges the instruction's Cost bundle to the hardware
	// counters. It models a run of straight-line machine instructions.
	OpWork Op = iota
	// OpSet evaluates expression B against the run parameters and stores
	// the result in register A. Used to initialize loop counters.
	OpSet
	// OpDec decrements register A.
	OpDec
	// OpBrZ branches to Target when register A is zero (loop exit test).
	OpBrZ
	// OpBrCond branches to Target when condition A evaluates true.
	OpBrCond
	// OpJump branches unconditionally to Target (loop back edges).
	OpJump
	// OpCall invokes procedure A; the return address is the next
	// instruction.
	OpCall
	// OpRet returns from the current procedure. Returning from the entry
	// procedure halts execution.
	OpRet
	// OpBarrier yields to the SPMD harness for a synchronization point;
	// the harness charges idle cost before execution resumes. A is a
	// barrier site identifier.
	OpBarrier
)

func (op Op) String() string {
	switch op {
	case OpWork:
		return "work"
	case OpSet:
		return "set"
	case OpDec:
		return "dec"
	case OpBrZ:
		return "brz"
	case OpBrCond:
		return "brcond"
	case OpJump:
		return "jump"
	case OpCall:
		return "call"
	case OpRet:
		return "ret"
	case OpBarrier:
		return "barrier"
	}
	return fmt.Sprintf("Op(%d)", uint8(op))
}

// NumRegs is the size of each frame's register file. Loop counters are
// allocated by nesting depth, so this bounds loop nesting (including loops
// introduced by inlining).
const NumRegs = 16

// InstrBytes is the notional encoded size of one instruction; addresses
// advance by this much per instruction so that PCs look like addresses.
const InstrBytes = 4

// NoFile marks an instruction or procedure without source information.
const NoFile = int32(-1)

// NoInline marks an instruction that is not inlined code.
const NoInline = int32(-1)

// Instr is one decoded instruction.
type Instr struct {
	Op     Op
	A      int32     // register / condition index / callee proc index / barrier id
	B      int32     // expression index (OpSet)
	Target int32     // branch target, as an instruction index
	Cost   prog.Cost // OpWork cost bundle
	File   int32     // source file (index into Image.Files), NoFile if unknown
	Line   int32     // source line
	Inline int32     // innermost inline-provenance node, NoInline if none
}

// FileSym names a source file and the module it belongs to.
type FileSym struct {
	Name   string
	Module int32
}

// ProcSym is a procedure symbol: its name, source location and the
// half-open instruction range [Start, End) it occupies.
type ProcSym struct {
	Name  string
	File  int32 // NoFile for binary-only procedures
	Line  int32
	Start int32
	End   int32
}

// InlineNode records one level of inline provenance: procedure Proc
// (declared at File:DeclLine) was inlined at CallFile:CallLine within the
// context identified by Parent (NoInline for top level). Equivalent to a
// DWARF DW_TAG_inlined_subroutine chain.
type InlineNode struct {
	Parent   int32
	Proc     string
	File     int32 // file declaring the inlined procedure
	DeclLine int32
	CallFile int32 // file containing the call that was inlined away
	CallLine int32
}

// Image is a lowered program: one flat code segment plus symbol, line,
// expression, condition and inline tables. All procedures of all load
// modules share one address space (module identity is retained in the file
// and module tables for the Flat View's load-module level).
type Image struct {
	Name    string
	Base    uint64
	Code    []Instr
	Modules []string
	Files   []FileSym
	Procs   []ProcSym
	Exprs   []prog.IntExpr
	Conds   []prog.Cond
	Inlines []InlineNode
	// EntryProc indexes Procs.
	EntryProc int32
}

// Addr converts an instruction index to a synthetic address.
func (im *Image) Addr(idx int32) uint64 { return im.Base + uint64(idx)*InstrBytes }

// Index converts a synthetic address back to an instruction index. It
// returns -1 when the address is outside the image.
func (im *Image) Index(addr uint64) int32 {
	if addr < im.Base {
		return -1
	}
	off := addr - im.Base
	if off%InstrBytes != 0 {
		return -1
	}
	idx := off / InstrBytes
	if idx >= uint64(len(im.Code)) {
		return -1
	}
	return int32(idx)
}

// ProcAt returns the index into Procs of the procedure containing the
// instruction index, or -1. Procedures are laid out in ascending,
// non-overlapping ranges, so binary search applies.
func (im *Image) ProcAt(idx int32) int32 {
	lo, hi := 0, len(im.Procs)
	for lo < hi {
		mid := (lo + hi) / 2
		p := &im.Procs[mid]
		switch {
		case idx < p.Start:
			hi = mid
		case idx >= p.End:
			lo = mid + 1
		default:
			return int32(mid)
		}
	}
	return -1
}

// ProcByName returns the index of the named procedure, or -1.
func (im *Image) ProcByName(name string) int32 {
	for i := range im.Procs {
		if im.Procs[i].Name == name {
			return int32(i)
		}
	}
	return -1
}

// InlineChain returns the inline provenance of instruction idx from
// outermost to innermost (nil when the instruction is not inlined code).
func (im *Image) InlineChain(idx int32) []InlineNode {
	if idx < 0 || int(idx) >= len(im.Code) {
		return nil
	}
	node := im.Code[idx].Inline
	var chain []InlineNode
	for node != NoInline {
		chain = append(chain, im.Inlines[node])
		node = im.Inlines[node].Parent
	}
	// reverse to outermost-first
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

// Fingerprint computes a stable identity for the image over its code and
// symbol tables. Profiles record it and correlation verifies it against
// the structure document's, so measurements taken from one build are never
// silently attributed against another build's structure (PCs would still
// fall in range — the mismatch is otherwise undetectable).
func (im *Image) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mixStr := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xfe
		h *= prime64
	}
	mixStr(im.Name)
	mix(im.Base)
	for _, in := range im.Code {
		mix(uint64(in.Op))
		mix(uint64(uint32(in.A)))
		mix(uint64(uint32(in.Target)))
		mix(in.Cost.Cycles)
		mix(uint64(uint32(in.Line)))
	}
	for _, p := range im.Procs {
		mixStr(p.Name)
		mix(uint64(uint32(p.Start)))
	}
	return h
}

// InlineChainIDs returns the indices into Inlines for instruction idx from
// outermost to innermost (nil when not inlined).
func (im *Image) InlineChainIDs(idx int32) []int32 {
	if idx < 0 || int(idx) >= len(im.Code) {
		return nil
	}
	return im.inlineChainOf(im.Code[idx].Inline)
}

// inlineChainOf expands an inline node id to the outermost-first id chain.
func (im *Image) inlineChainOf(node int32) []int32 {
	var ids []int32
	for node != NoInline {
		ids = append(ids, node)
		node = im.Inlines[node].Parent
	}
	for i, j := 0, len(ids)-1; i < j; i, j = i+1, j-1 {
		ids[i], ids[j] = ids[j], ids[i]
	}
	return ids
}

// InlineDepth returns the provenance depth of inline node id (0 when id is
// NoInline).
func (im *Image) InlineDepth(id int32) int {
	d := 0
	for id != NoInline {
		d++
		id = im.Inlines[id].Parent
	}
	return d
}

// Validate checks structural invariants: procedure ranges are ascending and
// non-overlapping, branch targets stay within their procedure, call targets
// and table indices are in range.
func (im *Image) Validate() error {
	if im.EntryProc < 0 || int(im.EntryProc) >= len(im.Procs) {
		return fmt.Errorf("isa: entry proc index %d out of range", im.EntryProc)
	}
	prevEnd := int32(0)
	for pi := range im.Procs {
		p := &im.Procs[pi]
		if p.Start < prevEnd || p.End < p.Start || int(p.End) > len(im.Code) {
			return fmt.Errorf("isa: proc %q has bad range [%d,%d)", p.Name, p.Start, p.End)
		}
		prevEnd = p.End
		for i := p.Start; i < p.End; i++ {
			in := &im.Code[i]
			switch in.Op {
			case OpBrZ, OpBrCond, OpJump:
				if in.Target < p.Start || in.Target >= p.End {
					return fmt.Errorf("isa: %q+%d: branch target %d escapes procedure [%d,%d)",
						p.Name, i-p.Start, in.Target, p.Start, p.End)
				}
			case OpCall:
				if in.A < 0 || int(in.A) >= len(im.Procs) {
					return fmt.Errorf("isa: %q+%d: call target %d out of range", p.Name, i-p.Start, in.A)
				}
			case OpSet:
				if in.B < 0 || int(in.B) >= len(im.Exprs) {
					return fmt.Errorf("isa: %q+%d: expr index %d out of range", p.Name, i-p.Start, in.B)
				}
				if in.A < 0 || in.A >= NumRegs {
					return fmt.Errorf("isa: %q+%d: register %d out of range", p.Name, i-p.Start, in.A)
				}
			case OpDec:
				if in.A < 0 || in.A >= NumRegs {
					return fmt.Errorf("isa: %q+%d: register %d out of range", p.Name, i-p.Start, in.A)
				}
			}
			if in.Op == OpBrZ && (in.A < 0 || in.A >= NumRegs) {
				return fmt.Errorf("isa: %q+%d: register %d out of range", p.Name, i-p.Start, in.A)
			}
			if in.Op == OpBrCond && (in.A < 0 || int(in.A) >= len(im.Conds)) {
				return fmt.Errorf("isa: %q+%d: cond index %d out of range", p.Name, i-p.Start, in.A)
			}
			if in.Inline != NoInline && (in.Inline < 0 || int(in.Inline) >= len(im.Inlines)) {
				return fmt.Errorf("isa: %q+%d: inline index %d out of range", p.Name, i-p.Start, in.Inline)
			}
			if in.File != NoFile && (in.File < 0 || int(in.File) >= len(im.Files)) {
				return fmt.Errorf("isa: %q+%d: file index %d out of range", p.Name, i-p.Start, in.File)
			}
		}
	}
	for fi := range im.Files {
		if im.Files[fi].Module < 0 || int(im.Files[fi].Module) >= len(im.Modules) {
			return fmt.Errorf("isa: file %q has bad module index", im.Files[fi].Name)
		}
	}
	for ii := range im.Inlines {
		n := &im.Inlines[ii]
		if n.Parent != NoInline && (n.Parent < 0 || n.Parent >= int32(ii)) {
			return fmt.Errorf("isa: inline node %d has bad parent %d", ii, n.Parent)
		}
	}
	return nil
}

// Disasm renders one instruction for debugging and tests.
func (im *Image) Disasm(idx int32) string {
	if idx < 0 || int(idx) >= len(im.Code) {
		return fmt.Sprintf("%d: <out of range>", idx)
	}
	in := &im.Code[idx]
	loc := ""
	if in.File != NoFile {
		loc = fmt.Sprintf(" ; %s:%d", im.Files[in.File].Name, in.Line)
	}
	switch in.Op {
	case OpWork:
		return fmt.Sprintf("%4d: work cyc=%d fl=%d l1=%d%s", idx, in.Cost.Cycles, in.Cost.FLOPs, in.Cost.L1Miss, loc)
	case OpSet:
		return fmt.Sprintf("%4d: set r%d, expr#%d%s", idx, in.A, in.B, loc)
	case OpDec:
		return fmt.Sprintf("%4d: dec r%d%s", idx, in.A, loc)
	case OpBrZ:
		return fmt.Sprintf("%4d: brz r%d -> %d%s", idx, in.A, in.Target, loc)
	case OpBrCond:
		return fmt.Sprintf("%4d: brcond c#%d -> %d%s", idx, in.A, in.Target, loc)
	case OpJump:
		return fmt.Sprintf("%4d: jump -> %d%s", idx, in.Target, loc)
	case OpCall:
		return fmt.Sprintf("%4d: call %s%s", idx, im.Procs[in.A].Name, loc)
	case OpRet:
		return fmt.Sprintf("%4d: ret%s", idx, loc)
	case OpBarrier:
		return fmt.Sprintf("%4d: barrier #%d%s", idx, in.A, loc)
	}
	return fmt.Sprintf("%4d: ???", idx)
}
