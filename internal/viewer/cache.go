package viewer

import (
	"container/list"

	"repro/internal/core"
)

// queryCache memoizes the expensive per-interaction query results — sorted
// sibling orders and hot paths — in one bounded LRU shared by a session.
// Re-rendering after an expand, collapse or selection re-sorts every
// visible sibling list from scratch without it; with it, only lists never
// ordered under the current (view, spec) pay the sort.
//
// Every key carries a generation stamp. Anything that can change metric
// values or sibling-list membership (derived-metric registration, lazy
// caller materialization, view switches, column fault-in) bumps the
// generation, so stale entries can never be returned; they age out of the
// LRU instead of being scanned for.
const cacheCapacity = 256

// siblingsKey identifies one sorted sibling list: the list is owned by a
// parent scope (nil for a view's top-level forest, which flattening can
// re-shape — hence the flatten level).
type siblingsKey struct {
	view    ViewKind
	parent  *core.Node
	flatten int
	spec    core.SortSpec
	gen     uint64
}

// hotKey identifies one hot-path query (Equation 3 is deterministic in its
// start scope, column and threshold).
type hotKey struct {
	start     *core.Node
	metricID  int
	threshold float64
	gen       uint64
}

type cacheEntry struct {
	key  any // siblingsKey or hotKey
	rows []*core.Node
}

type queryCache struct {
	gen uint64
	lru *list.List // *cacheEntry; front = most recently used
	idx map[any]*list.Element
}

func newQueryCache() *queryCache {
	return &queryCache{lru: list.New(), idx: map[any]*list.Element{}}
}

// bump invalidates every existing entry.
func (c *queryCache) bump() { c.gen++ }

func (c *queryCache) get(key any) ([]*core.Node, bool) {
	el, ok := c.idx[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).rows, true
}

func (c *queryCache) put(key any, rows []*core.Node) {
	if el, ok := c.idx[key]; ok {
		el.Value.(*cacheEntry).rows = rows
		c.lru.MoveToFront(el)
		return
	}
	c.idx[key] = c.lru.PushFront(&cacheEntry{key: key, rows: rows})
	for c.lru.Len() > cacheCapacity {
		el := c.lru.Back()
		c.lru.Remove(el)
		delete(c.idx, el.Value.(*cacheEntry).key)
	}
}

// sortedSiblings returns ns ordered by the session sort, memoized per
// sibling list. The returned slice is owned by the cache: callers may
// re-slice but must not reorder it.
func (s *Session) sortedSiblings(parent *core.Node, ns []*core.Node) []*core.Node {
	key := siblingsKey{view: s.view, parent: parent, flatten: s.flatten, spec: s.sort, gen: s.cache.gen}
	if rows, ok := s.cache.get(key); ok {
		return rows
	}
	sorted := append([]*core.Node(nil), ns...)
	core.SortScopes(sorted, s.sort)
	s.cache.put(key, sorted)
	return sorted
}

// hotPathCached returns the memoized Equation 3 result for (start, metric)
// at the current threshold.
func (s *Session) hotPathCached(start *core.Node, metricID int) []*core.Node {
	key := hotKey{start: start, metricID: metricID, threshold: s.threshold, gen: s.cache.gen}
	if path, ok := s.cache.get(key); ok {
		return path
	}
	path := core.HotPath(start, metricID, s.threshold)
	s.cache.put(key, path)
	return path
}

// SetColumnFaulter registers a hook invoked once per metric column before
// the session first sorts by, runs hot-path analysis over, or renders it.
// A lazily opened database (expdb.OpenLazy) plugs its NeedColumn here so
// override-backed columns are decoded only when the session actually
// touches them. A fault error is reported by the next Render.
func (s *Session) SetColumnFaulter(f func(metricID int) error) {
	s.faulter = f
	s.faulted = nil
	s.faultErr = nil
}

// faultColumn runs the column faulter once for a column. Values may have
// changed, so a successful first fault invalidates memoized orders.
func (s *Session) faultColumn(id int) {
	if s.faulter == nil || s.faulted[id] {
		return
	}
	if s.faulted == nil {
		s.faulted = map[int]bool{}
	}
	s.faulted[id] = true
	if err := s.faulter(id); err != nil && s.faultErr == nil {
		s.faultErr = err
	}
	s.cache.bump()
}
