// Package viewer is the interactive presentation session: the stateful
// equivalent of hpcviewer's GUI, driven programmatically or from the
// hpcviewer command's REPL. It models the interactions the paper's Section
// V designs for:
//
//   - top-down access: only the roots are visible until scopes are
//     expanded one link at a time — or en masse by hot-path analysis,
//     which "enables the user to instantaneously drill down into a nested
//     context" (Section V-C);
//   - three switchable views sharing one selection/sort state;
//   - sorting by any (possibly derived) metric column;
//   - zoom into a subtree and back out;
//   - flattening in the Flat View (Section III-C);
//   - a source pane that follows the selection (Section III-D.1).
package viewer

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/imbalance"
	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/render"
	"repro/internal/structfile"
)

// ViewKind selects the active view.
type ViewKind uint8

const (
	// ViewCC is the Calling Context View.
	ViewCC ViewKind = iota
	// ViewCallers is the bottom-up Callers View.
	ViewCallers
	// ViewFlat is the static Flat View.
	ViewFlat
)

func (v ViewKind) String() string {
	switch v {
	case ViewCC:
		return "calling-context"
	case ViewCallers:
		return "callers"
	case ViewFlat:
		return "flat"
	}
	return fmt.Sprintf("ViewKind(%d)", uint8(v))
}

// Session is one interactive presentation of a tree.
type Session struct {
	tree *core.Tree
	// source, when non-nil, backs the source pane.
	source *prog.Program
	// doc and profiles, when attached, back the per-rank plot graphs.
	doc      *structfile.Doc
	profiles []*profile.Profile

	view     ViewKind
	callers  *core.CallersView
	flat     *core.FlatView
	expanded map[*core.Node]bool
	sort     core.SortSpec
	// zoom restricts the Calling Context View to one subtree.
	zoom []*core.Node
	// flatten is the Flat View's current flattening level.
	flatten   int
	selected  *core.Node
	highlight map[*core.Node]bool
	threshold float64
	// topN and maxDepth bound the visible rows (0 = unlimited).
	topN     int
	maxDepth int
	// columns selects the metric pane's columns (nil = all).
	columns []render.Column
	// rows caches the last computed visible rows (for addressing).
	rows []render.Row

	// cache memoizes sorted sibling orders and hot paths across renders;
	// see cache.go for the invalidation discipline.
	cache *queryCache
	// faulter, when set, loads a metric column on first use (lazy
	// databases); faulted tracks which columns were offered, faultErr the
	// first failure (surfaced by Render).
	faulter  func(metricID int) error
	faulted  map[int]bool
	faultErr error
}

// New creates a session over a computed tree. source may be nil.
func New(t *core.Tree, source *prog.Program) *Session {
	return &Session{
		tree:      t,
		source:    source,
		expanded:  map[*core.Node]bool{},
		highlight: map[*core.Node]bool{},
		threshold: core.DefaultHotPathThreshold,
		cache:     newQueryCache(),
	}
}

// Tree returns the underlying tree.
func (s *Session) Tree() *core.Tree { return s.tree }

// View returns the active view kind.
func (s *Session) View() ViewKind { return s.view }

// SwitchView changes the active view, preserving sort and threshold but
// clearing expansion, zoom and highlights (each view has its own scopes).
func (s *Session) SwitchView(v ViewKind) {
	if v == s.view {
		return
	}
	s.view = v
	s.expanded = map[*core.Node]bool{}
	s.highlight = map[*core.Node]bool{}
	s.zoom = nil
	s.selected = nil
	s.rows = nil
	// Switching may build a view lazily (new scopes, new sibling lists).
	s.cache.bump()
}

// SetSort selects the sort column/flavor.
func (s *Session) SetSort(spec core.SortSpec) { s.sort = spec }

// SetThreshold adjusts the hot-path threshold (the paper exposes it as a
// preference; values outside (0,1] restore the default).
func (s *Session) SetThreshold(t float64) {
	if t <= 0 || t > 1 {
		t = core.DefaultHotPathThreshold
	}
	s.threshold = t
}

// roots returns the active view's current top-level scopes plus the scope
// that owns the list (nil for a view's forest) — the identity the query
// cache keys sibling orders by.
func (s *Session) roots() (parent *core.Node, ns []*core.Node) {
	switch s.view {
	case ViewCC:
		if len(s.zoom) > 0 {
			z := s.zoom[len(s.zoom)-1]
			return z, z.Children
		}
		return s.tree.Root, s.tree.Root.Children
	case ViewCallers:
		if s.callers == nil {
			s.callers = core.BuildCallersView(s.tree)
		}
		return nil, s.callers.Roots
	case ViewFlat:
		if s.flat == nil {
			s.flat = core.BuildFlatView(s.tree)
		}
		return nil, core.FlattenN(s.flat.Roots, s.flatten)
	}
	return nil, nil
}

// SetLimits bounds the visible rows: at most topN children per scope and
// maxDepth levels (0 = unlimited). Truncated scopes keep their expander
// mark, matching the renderer's focus discipline (Section V-A).
func (s *Session) SetLimits(topN, maxDepth int) {
	s.topN, s.maxDepth = topN, maxDepth
}

// VisibleRows recomputes and returns the rows currently on screen:
// top-level scopes always, descendants only along expanded chains, every
// sibling list ordered by the session sort.
func (s *Session) VisibleRows() []render.Row {
	s.rows = s.rows[:0]
	if !s.sort.ByLabel {
		s.faultColumn(s.sort.MetricID)
	}
	var add func(parent *core.Node, ns []*core.Node, depth int)
	add = func(parent *core.Node, ns []*core.Node, depth int) {
		sorted := s.sortedSiblings(parent, ns)
		truncated := false
		if s.topN > 0 && len(sorted) > s.topN {
			sorted = sorted[:s.topN]
			truncated = true
		}
		_ = truncated
		for _, n := range sorted {
			childrenShown := s.expanded[n] && (s.maxDepth == 0 || depth+1 < s.maxDepth)
			hidden := len(n.Children) > 0 && !childrenShown
			// The Callers View materializes children lazily: an
			// unexpanded root row may not know its callers yet, so it
			// is presented as expandable regardless.
			if s.view == ViewCallers && s.callers != nil && n.Parent == nil && !s.callers.Expanded(n) {
				hidden = true
			}
			s.rows = append(s.rows, render.Row{Node: n, Depth: depth, HasHidden: hidden})
			if childrenShown {
				add(n, n.Children, depth+1)
			}
		}
	}
	parent, ns := s.roots()
	add(parent, ns, 0)
	return s.rows
}

// RowNode resolves a row number from the last VisibleRows/Render call
// (computing the rows first if none have been rendered yet).
func (s *Session) RowNode(idx int) (*core.Node, error) {
	if len(s.rows) == 0 {
		s.VisibleRows()
	}
	if idx < 0 || idx >= len(s.rows) {
		return nil, fmt.Errorf("viewer: row %d out of range (0..%d)", idx, len(s.rows)-1)
	}
	return s.rows[idx].Node, nil
}

// Select makes the node the current selection (for source pane and
// hot-path starting point).
func (s *Session) Select(n *core.Node) { s.selected = n }

// Selected returns the current selection (nil if none).
func (s *Session) Selected() *core.Node { return s.selected }

// Expand opens one scope (for the Callers View this materializes the
// caller chain on demand — Section VII's lazy construction).
func (s *Session) Expand(n *core.Node) {
	if s.view == ViewCallers && s.callers != nil {
		for _, r := range s.callers.Roots {
			if r == n {
				s.callers.Expand(r)
				// Materialization may have created caller rows.
				s.cache.bump()
			}
		}
	}
	s.expanded[n] = true
}

// Collapse closes one scope.
func (s *Session) Collapse(n *core.Node) { delete(s.expanded, n) }

// ExpandAll opens every scope under n (and n itself). In the Callers View
// this materializes every caller subtrie, which can fail on a damaged
// view; the scopes opened so far stay open.
func (s *Session) ExpandAll(n *core.Node) error {
	var err error
	if s.view == ViewCallers && s.callers != nil {
		err = s.callers.ExpandAll()
		s.cache.bump()
	}
	core.Walk(n, func(x *core.Node) bool {
		s.expanded[x] = true
		return true
	})
	return err
}

// HotPath runs hot-path analysis (Equation 3) over the given metric from
// the selection (or the whole view when nothing is selected), expands
// every scope along the path so it is visible, highlights it, and selects
// its endpoint — the paper's one-click drill-down.
func (s *Session) HotPath(metricID int) []*core.Node {
	s.faultColumn(metricID)
	start := s.selected
	if start == nil {
		if s.view == ViewCC && len(s.zoom) > 0 {
			start = s.zoom[len(s.zoom)-1]
		} else if s.view == ViewCC {
			start = s.tree.Root
		} else {
			// Derived views have a forest; start from the hottest root.
			_, roots := s.roots()
			if len(roots) == 0 {
				return nil
			}
			best := roots[0]
			for _, r := range roots[1:] {
				if r.Incl.Get(metricID) > best.Incl.Get(metricID) {
					best = r
				}
			}
			start = best
		}
	}
	if s.view == ViewCallers && s.callers != nil {
		// The path may need lazily built caller chains.
		for _, r := range s.callers.Roots {
			if r == start {
				s.callers.Expand(r)
				s.cache.bump()
			}
		}
	}
	path := s.hotPathCached(start, metricID)
	s.highlight = map[*core.Node]bool{}
	for _, n := range path {
		s.highlight[n] = true
		s.expanded[n] = true
	}
	if len(path) > 0 {
		s.selected = path[len(path)-1]
	}
	return path
}

// ZoomIn restricts the Calling Context View to the subtree at n.
func (s *Session) ZoomIn(n *core.Node) error {
	if s.view != ViewCC {
		return fmt.Errorf("viewer: zoom applies to the calling context view")
	}
	s.zoom = append(s.zoom, n)
	return nil
}

// ZoomOut undoes one ZoomIn.
func (s *Session) ZoomOut() {
	if len(s.zoom) > 0 {
		s.zoom = s.zoom[:len(s.zoom)-1]
	}
}

// FlattenOnce elides the Flat View's current top level (Section III-C).
func (s *Session) FlattenOnce() error {
	if s.view != ViewFlat {
		return fmt.Errorf("viewer: flattening applies to the flat view")
	}
	s.flatten++
	return nil
}

// Unflatten undoes one FlattenOnce.
func (s *Session) Unflatten() {
	if s.flatten > 0 {
		s.flatten--
	}
}

// FlattenLevel reports the current flattening depth.
func (s *Session) FlattenLevel() int { return s.flatten }

// SetColumns selects which metric columns the metric pane shows (nil
// restores all columns) — the paper's "using table to represent metrics
// allows a user to select which metric to observe" (Section VII).
func (s *Session) SetColumns(cols []render.Column) { s.columns = cols }

// Render writes the visible rows with row numbers. Columns about to be
// displayed are faulted in first (lazy databases); a fault failure aborts
// the render with the section's typed error.
func (s *Session) Render(w io.Writer, opt render.Options) error {
	if opt.Columns == nil {
		opt.Columns = s.columns
	}
	if s.faulter != nil {
		if opt.Columns != nil {
			for _, c := range opt.Columns {
				s.faultColumn(c.MetricID)
			}
		} else {
			for _, d := range s.tree.Reg.Columns() {
				s.faultColumn(d.ID)
			}
		}
	}
	rows := s.VisibleRows()
	if err := s.faultErr; err != nil {
		s.faultErr = nil
		return err
	}
	opt.Highlight = s.highlight
	if opt.Totals == nil {
		opt.Totals = s.tree.Total
	}
	return render.RenderRows(w, rows, s.tree.Reg, opt)
}

// AddDerivedMetric registers a derived column and evaluates it over the
// whole tree with the compiled column kernels, invalidating memoized
// orders and hot paths (metric values changed). Columns the formula reads
// are faulted in first when the session fronts a lazy database.
func (s *Session) AddDerivedMetric(name, formula string) error {
	d, err := s.tree.Reg.AddDerived(name, formula)
	if err != nil {
		return err
	}
	if s.faulter != nil {
		if p, perr := d.Program(); perr == nil {
			for _, rc := range p.ColumnRefs() {
				s.faultColumn(rc)
			}
		}
	}
	s.cache.bump()
	if err := s.tree.ApplyDerivedTree(); err != nil {
		return err
	}
	if err := s.faultErr; err != nil {
		s.faultErr = nil
		return err
	}
	return nil
}

// AttachProfiles supplies the raw per-rank profiles and the structure
// document, enabling per-rank plot graphs (the three graphs of Figure 7).
func (s *Session) AttachProfiles(doc *structfile.Doc, profs []*profile.Profile) {
	s.doc = doc
	s.profiles = profs
}

// Plot renders the per-rank distribution of the named metric at the
// selected Calling Context View scope: scatter, sorted series and
// histogram (Section VI-C). Requires AttachProfiles and a selection in the
// CC view (the per-rank series is defined by a calling context).
func (s *Session) Plot(w io.Writer, metricName string, bins int) error {
	if s.doc == nil || len(s.profiles) == 0 {
		return fmt.Errorf("viewer: no profiles attached (plot needs the raw measurements)")
	}
	n := s.selected
	if n == nil {
		return fmt.Errorf("viewer: nothing selected")
	}
	if s.view != ViewCC {
		return fmt.Errorf("viewer: plots are defined over calling contexts (switch to the cc view)")
	}
	var path []string
	for _, a := range n.Path() {
		path = append(path, a.Label())
	}
	rep, err := imbalance.Analyze(s.doc, s.profiles, path, metricName, bins)
	if err != nil {
		return err
	}
	return rep.Render(w)
}

// ShowSource writes the source pane for the selection: the pseudo-source
// window around the scope's line. Call sites show the caller-side line
// (clicking the call-site icon in hpcviewer), everything else its own
// line.
func (s *Session) ShowSource(w io.Writer, context int) error {
	if s.source == nil {
		return fmt.Errorf("viewer: no program source attached")
	}
	n := s.selected
	if n == nil {
		return fmt.Errorf("viewer: nothing selected")
	}
	if n.NoSource {
		return fmt.Errorf("viewer: %s is binary-only (no source)", n.Label())
	}
	file, line := n.File, n.Line
	if n.Kind == core.KindFrame && n.CallLine > 0 {
		file, line = n.CallFile, n.CallLine
	}
	if file == 0 || line <= 0 {
		return fmt.Errorf("viewer: %s has no source location", n.Label())
	}
	fmt.Fprintf(w, "%s:%d (%s)\n", file, line, n.Label())
	return s.source.WriteSource(w, file.String(), line, context)
}
