// Package viewer is the interactive presentation session API, kept as a
// thin compatibility shim over internal/engine. The session logic —
// views, expansion, zoom, flattening, sorting, derived metrics, hot
// paths, the query cache and the REPL grammar — moved into the engine so
// that one opened database (an engine.Snapshot) can serve many concurrent
// sessions; this package preserves the single-session construction shape
// (New over a bare tree) that programmatic callers and tests use.
package viewer

import (
	"io"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/prog"
)

// ViewKind selects the active view.
type ViewKind = engine.ViewKind

const (
	// ViewCC is the Calling Context View.
	ViewCC = engine.ViewCC
	// ViewCallers is the bottom-up Callers View.
	ViewCallers = engine.ViewCallers
	// ViewFlat is the static Flat View.
	ViewFlat = engine.ViewFlat
)

// Session is one interactive presentation of a tree.
type Session = engine.Session

// New creates a session over a computed tree, sealing the tree as a
// private snapshot. source may be nil. Sessions that should share one
// snapshot are created with engine.NewSession instead.
func New(t *core.Tree, source *prog.Program) *Session {
	s := engine.NewSession(engine.NewTreeSnapshot(t))
	s.SetSource(source)
	return s
}

// Help describes the REPL commands.
const Help = engine.Help

// Exec runs one command line against a session. It returns true when the
// session should end.
func Exec(s *Session, line string, out io.Writer) (quit bool, err error) {
	return engine.Exec(s, line, out)
}
