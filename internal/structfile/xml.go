package structfile

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The XML structure format follows hpcstruct's document shape:
//
//	<HPCToolkitStructure n="prog">
//	  <LM n="toy.exe">
//	    <F n="file2.c">
//	      <P n="h" l="7" v="0x400010-0x400020">
//	        <L l="8" v="...">
//	          <S l="9" v="..."/>
//	          <A n="compare" f="seq.h" l="20" cl="12"> ... </A>
//	        </L>
//	      </P>
//	    </F>
//	  </LM>
//	</HPCToolkitStructure>
//
// Attribute key: n = name, f = file, l = line, cl = inlined call line,
// v = address ranges, ns = no-source flag.

var kindElem = map[Kind]string{
	KindLM:    "LM",
	KindFile:  "F",
	KindProc:  "P",
	KindLoop:  "L",
	KindAlien: "A",
	KindStmt:  "S",
}

var elemKind = map[string]Kind{
	"LM": KindLM,
	"F":  KindFile,
	"P":  KindProc,
	"L":  KindLoop,
	"A":  KindAlien,
	"S":  KindStmt,
}

const rootElem = "HPCToolkitStructure"

// WriteXML serializes the document.
func (d *Doc) WriteXML(w io.Writer) error {
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	root := xml.StartElement{
		Name: xml.Name{Local: rootElem},
		Attr: []xml.Attr{{Name: xml.Name{Local: "n"}, Value: d.Program}},
	}
	if d.Fingerprint != 0 {
		root.Attr = append(root.Attr, xml.Attr{
			Name: xml.Name{Local: "fp"}, Value: strconv.FormatUint(d.Fingerprint, 16),
		})
	}
	if err := enc.EncodeToken(root); err != nil {
		return err
	}
	for _, lm := range d.Root.Children {
		if err := encodeScope(enc, lm); err != nil {
			return err
		}
	}
	if err := enc.EncodeToken(root.End()); err != nil {
		return err
	}
	return enc.Flush()
}

func encodeScope(enc *xml.Encoder, s *Scope) error {
	name, ok := kindElem[s.Kind]
	if !ok {
		return fmt.Errorf("structfile: cannot serialize scope kind %v", s.Kind)
	}
	start := xml.StartElement{Name: xml.Name{Local: name}}
	attr := func(k, v string) {
		start.Attr = append(start.Attr, xml.Attr{Name: xml.Name{Local: k}, Value: v})
	}
	if s.Name != "" {
		attr("n", s.Name)
	}
	if s.File != "" && (s.Kind == KindAlien || s.Kind == KindLoop || s.Kind == KindStmt) {
		attr("f", s.File)
	}
	if s.Line != 0 {
		attr("l", strconv.Itoa(s.Line))
	}
	if s.CallLine != 0 {
		attr("cl", strconv.Itoa(s.CallLine))
	}
	if s.NoSource {
		attr("ns", "1")
	}
	if len(s.Ranges) > 0 {
		attr("v", formatRanges(s.Ranges))
	}
	if err := enc.EncodeToken(start); err != nil {
		return err
	}
	for _, c := range s.Children {
		if err := encodeScope(enc, c); err != nil {
			return err
		}
	}
	return enc.EncodeToken(start.End())
}

func formatRanges(rs []Range) string {
	var b strings.Builder
	for i, r := range rs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "0x%x-0x%x", r.Lo, r.Hi)
	}
	return b.String()
}

func parseRanges(s string) ([]Range, error) {
	if s == "" {
		return nil, nil
	}
	var out []Range
	for _, part := range strings.Fields(s) {
		dash := strings.IndexByte(part, '-')
		if dash < 0 {
			return nil, fmt.Errorf("structfile: bad range %q", part)
		}
		lo, err := strconv.ParseUint(strings.TrimPrefix(part[:dash], "0x"), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("structfile: bad range %q: %v", part, err)
		}
		hi, err := strconv.ParseUint(strings.TrimPrefix(part[dash+1:], "0x"), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("structfile: bad range %q: %v", part, err)
		}
		if hi < lo {
			return nil, fmt.Errorf("structfile: inverted range %q", part)
		}
		out = append(out, Range{Lo: lo, Hi: hi})
	}
	return out, nil
}

// ReadXML parses a structure document.
func ReadXML(r io.Reader) (*Doc, error) {
	dec := xml.NewDecoder(r)
	var doc *Doc
	var stack []*Scope
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("structfile: %w", err)
		}
		switch tok := tok.(type) {
		case xml.StartElement:
			if tok.Name.Local == rootElem {
				if doc != nil {
					return nil, fmt.Errorf("structfile: multiple document roots")
				}
				doc = &Doc{Root: &Scope{Kind: KindRoot}}
				for _, a := range tok.Attr {
					switch a.Name.Local {
					case "n":
						doc.Program = a.Value
						doc.Root.Name = a.Value
					case "fp":
						fp, err := strconv.ParseUint(a.Value, 16, 64)
						if err != nil {
							return nil, fmt.Errorf("structfile: bad fingerprint %q", a.Value)
						}
						doc.Fingerprint = fp
					}
				}
				stack = append(stack, doc.Root)
				continue
			}
			kind, ok := elemKind[tok.Name.Local]
			if !ok {
				return nil, fmt.Errorf("structfile: unknown element <%s>", tok.Name.Local)
			}
			if len(stack) == 0 {
				return nil, fmt.Errorf("structfile: <%s> outside document root", tok.Name.Local)
			}
			s := &Scope{Kind: kind, Parent: stack[len(stack)-1]}
			for _, a := range tok.Attr {
				switch a.Name.Local {
				case "n":
					s.Name = a.Value
				case "f":
					s.File = a.Value
				case "l":
					n, err := strconv.Atoi(a.Value)
					if err != nil {
						return nil, fmt.Errorf("structfile: bad line %q", a.Value)
					}
					s.Line = n
				case "cl":
					n, err := strconv.Atoi(a.Value)
					if err != nil {
						return nil, fmt.Errorf("structfile: bad call line %q", a.Value)
					}
					s.CallLine = n
				case "ns":
					s.NoSource = a.Value == "1"
				case "v":
					rs, err := parseRanges(a.Value)
					if err != nil {
						return nil, err
					}
					s.Ranges = rs
				}
			}
			s.Parent.Children = append(s.Parent.Children, s)
			stack = append(stack, s)
		case xml.EndElement:
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
		}
	}
	if doc == nil {
		return nil, fmt.Errorf("structfile: no %s element found", rootElem)
	}
	// File scopes inherit their name into descendants that omitted the f
	// attribute (Proc scopes store File but don't serialize it).
	var fix func(s *Scope, file string)
	fix = func(s *Scope, file string) {
		switch s.Kind {
		case KindFile:
			file = s.Name
		case KindProc, KindLoop, KindAlien, KindStmt:
			if s.File == "" && !s.NoSource {
				s.File = file
			}
			if s.Kind == KindAlien || s.Kind == KindLoop {
				file = s.File
			}
		}
		for _, c := range s.Children {
			fix(c, file)
		}
	}
	fix(doc.Root, "")
	return doc, nil
}
