package structfile

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/lower"
	"repro/internal/prog"
)

func toyImage(t *testing.T, opt lower.Options) *isa.Image {
	t.Helper()
	p := prog.NewBuilder("toy").
		Module("toy.exe").
		File("file1.c").
		Proc("f", 1, prog.C(2, "g")).
		Proc("m", 6, prog.C(7, "f"), prog.C(8, "g")).
		File("file2.c").
		Proc("g", 2,
			prog.IfDepth(3, 2, prog.C(3, "g")),
			prog.IfP(4, 0.5, prog.C(4, "h")),
			prog.W(5, 1)).
		Proc("h", 7,
			prog.L(8, 10,
				prog.L(9, 10, prog.W(9, 1)))).
		Entry("m").
		MustBuild()
	im, err := lower.Lower(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestRecoverToy(t *testing.T) {
	doc, err := Recover(toyImage(t, lower.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	st := doc.Stats()
	if st.LMs != 1 || st.Files != 2 || st.Procs != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Loops != 2 {
		t.Fatalf("loops = %d, want 2 (h's nest)", st.Loops)
	}
	h := doc.FindProc("h")
	if h == nil {
		t.Fatal("proc h not found")
	}
	// h contains l1 (line 8) which contains l2 (line 9).
	var l1 *Scope
	for _, c := range h.Children {
		if c.Kind == KindLoop && c.Line == 8 {
			l1 = c
		}
	}
	if l1 == nil {
		t.Fatalf("loop at line 8 not under h: %+v", h.Children)
	}
	var l2 *Scope
	for _, c := range l1.Children {
		if c.Kind == KindLoop && c.Line == 9 {
			l2 = c
		}
	}
	if l2 == nil {
		t.Fatal("loop at line 9 not nested in loop at line 8")
	}
	// l2 contains the statement at line 9.
	foundStmt := false
	for _, c := range l2.Children {
		if c.Kind == KindStmt && c.Line == 9 {
			foundStmt = true
		}
	}
	if !foundStmt {
		t.Fatal("statement at line 9 not inside inner loop")
	}
}

func TestRecoverRangesNestProperly(t *testing.T) {
	doc, err := Recover(toyImage(t, lower.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	// Every child scope's ranges must be covered by its parent's ranges
	// (below the file level, which carries no ranges).
	var walk func(s *Scope)
	var total int
	walk = func(s *Scope) {
		for _, c := range s.Children {
			if s.Kind != KindRoot && s.Kind != KindLM && s.Kind != KindFile {
				for _, r := range c.Ranges {
					for a := r.Lo; a < r.Hi; a += isa.InstrBytes {
						total++
						if !s.ContainsAddr(a) {
							t.Fatalf("%v scope does not cover child %v addr 0x%x", s.Kind, c.Kind, a)
						}
					}
				}
			}
			walk(c)
		}
	}
	walk(doc.Root)
	if total == 0 {
		t.Fatal("no nested ranges checked")
	}
}

func TestResolveEveryInstruction(t *testing.T) {
	im := toyImage(t, lower.Options{})
	doc, err := Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	for i := range im.Code {
		addr := im.Addr(int32(i))
		res, ok := doc.Resolve(addr)
		if !ok {
			t.Fatalf("instruction %d (%s) unresolved", i, im.Disasm(int32(i)))
		}
		pi := im.ProcAt(int32(i))
		if res.Proc.Name != im.Procs[pi].Name {
			t.Fatalf("instr %d resolved to proc %q, want %q", i, res.Proc.Name, im.Procs[pi].Name)
		}
		if res.Stmt == nil || res.LM == nil || res.File == nil {
			t.Fatalf("instr %d: incomplete resolution %+v", i, res)
		}
		if res.Stmt.Line != int(im.Code[i].Line) {
			t.Fatalf("instr %d: line %d, want %d", i, res.Stmt.Line, im.Code[i].Line)
		}
	}
	if _, ok := doc.Resolve(0x1); ok {
		t.Fatal("bogus address resolved")
	}
	if _, ok := doc.Resolve(im.Addr(int32(len(im.Code)))); ok {
		t.Fatal("past-the-end address resolved")
	}
}

func TestResolveLoopChain(t *testing.T) {
	im := toyImage(t, lower.Options{})
	doc, err := Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	// The work instruction at file2.c:9 sits in a two-deep loop nest.
	for i, in := range im.Code {
		if in.Op == isa.OpWork && in.Line == 9 {
			res, ok := doc.Resolve(im.Addr(int32(i)))
			if !ok {
				t.Fatal("unresolved")
			}
			if len(res.Chain) != 2 {
				t.Fatalf("chain length = %d, want 2", len(res.Chain))
			}
			if res.Chain[0].Kind != KindLoop || res.Chain[0].Line != 8 ||
				res.Chain[1].Kind != KindLoop || res.Chain[1].Line != 9 {
				t.Fatalf("chain = [%v:%d %v:%d]", res.Chain[0].Kind, res.Chain[0].Line, res.Chain[1].Kind, res.Chain[1].Line)
			}
		}
	}
}

func TestRecoverInlining(t *testing.T) {
	p := prog.NewBuilder("inl").
		Module("mesh.exe").
		File("core.cc").
		InlineProc("compare", 20, prog.W(21, 1)).
		InlineProc("find", 10,
			prog.L(11, 4, prog.C(12, "compare"))).
		Proc("get_coords", 1,
			prog.L(2, 16, prog.C(3, "find"))).
		Entry("get_coords").
		MustBuild()
	im, err := lower.Lower(p, lower.Options{Inline: true})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	st := doc.Stats()
	// Two aliens inside get_coords (find, and compare within find), plus
	// one inside the standalone out-of-line copy of find (compare).
	if st.Aliens != 3 {
		t.Fatalf("aliens = %d, want 3", st.Aliens)
	}
	// Hierarchy: get_coords > loop(2) > alien(find) > loop(11) >
	// alien(compare) > stmt(21) — the Figure 5 shape.
	gc := doc.FindProc("get_coords")
	if gc == nil {
		t.Fatal("get_coords not found")
	}
	path := []struct {
		kind Kind
		name string
		line int
	}{
		{KindLoop, "", 2},
		{KindAlien, "find", 10},
		{KindLoop, "", 11},
		{KindAlien, "compare", 20},
		{KindStmt, "", 21},
	}
	cur := gc
	for step, want := range path {
		var next *Scope
		for _, c := range cur.Children {
			if c.Kind == want.kind && c.Line == want.line && (want.name == "" || c.Name == want.name) {
				next = c
				break
			}
		}
		if next == nil {
			t.Fatalf("step %d: no %v line %d under %v (children: %d)", step, want.kind, want.line, cur.Kind, len(cur.Children))
		}
		cur = next
	}
	// Alien call-line provenance.
	find := gc.Children[0] // may be stmt or loop; search instead
	_ = find
	var findAlien *Scope
	var walk func(s *Scope)
	walk = func(s *Scope) {
		if s.Kind == KindAlien && s.Name == "find" {
			findAlien = s
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(gc)
	if findAlien == nil || findAlien.CallLine != 3 {
		t.Fatalf("find alien call line wrong: %+v", findAlien)
	}
}

func TestRecoverNoSourceProc(t *testing.T) {
	p := prog.NewBuilder("rt").
		File("a.c").
		Proc("main", 1, prog.C(2, "memset")).
		RuntimeProc("memset", prog.W(1, 5)).
		Entry("main").
		MustBuild()
	im, err := lower.Lower(p, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	ms := doc.FindProc("memset")
	if ms == nil {
		t.Fatal("memset not found")
	}
	if !ms.NoSource {
		t.Fatal("memset should be marked NoSource")
	}
	// Resolving into memset still works.
	mi := im.ProcByName("memset")
	res, ok := doc.Resolve(im.Addr(im.Procs[mi].Start))
	if !ok || res.Proc.Name != "memset" {
		t.Fatalf("resolve into memset failed: %+v ok=%v", res, ok)
	}
}

func TestXMLRoundTrip(t *testing.T) {
	im := toyImage(t, lower.Options{})
	doc, err := Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := doc.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<HPCToolkitStructure") {
		t.Fatalf("missing root element:\n%s", buf.String())
	}
	got, err := ReadXML(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadXML: %v\n%s", err, buf.String())
	}
	if got.Program != doc.Program {
		t.Fatalf("program name %q != %q", got.Program, doc.Program)
	}
	if got.Stats() != doc.Stats() {
		t.Fatalf("stats changed: %+v != %+v", got.Stats(), doc.Stats())
	}
	// Resolution must behave identically after a round trip.
	for i := range im.Code {
		addr := im.Addr(int32(i))
		a, okA := doc.Resolve(addr)
		b, okB := got.Resolve(addr)
		if okA != okB {
			t.Fatalf("resolve disagreement at 0x%x", addr)
		}
		if !okA {
			continue
		}
		if a.Proc.Name != b.Proc.Name || a.Stmt.Line != b.Stmt.Line || len(a.Chain) != len(b.Chain) {
			t.Fatalf("resolution changed at 0x%x: %v:%d vs %v:%d", addr, a.Proc.Name, a.Stmt.Line, b.Proc.Name, b.Stmt.Line)
		}
		for k := range a.Chain {
			if a.Chain[k].Kind != b.Chain[k].Kind || a.Chain[k].Line != b.Chain[k].Line {
				t.Fatalf("chain changed at 0x%x", addr)
			}
		}
	}
}

func TestXMLRoundTripWithInlining(t *testing.T) {
	im := toyImage(t, lower.Options{})
	_ = im
	p := prog.NewBuilder("inl2").
		File("a.c").
		InlineProc("k", 10, prog.L(11, 2, prog.W(12, 1))).
		Proc("main", 1, prog.C(2, "k")).
		Entry("main").
		MustBuild()
	img, err := lower.Lower(p, lower.Options{Inline: true})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := Recover(img)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := doc.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadXML(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats().Aliens != 1 {
		t.Fatalf("aliens after round trip = %d, want 1", got.Stats().Aliens)
	}
	// The alien's call line survives.
	var alien *Scope
	var walk func(s *Scope)
	walk = func(s *Scope) {
		if s.Kind == KindAlien {
			alien = s
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(got.Root)
	if alien == nil || alien.CallLine != 2 || alien.Name != "k" {
		t.Fatalf("alien lost attributes: %+v", alien)
	}
}

func TestReadXMLErrors(t *testing.T) {
	cases := []string{
		``,
		`<Wrong/>`,
		`<HPCToolkitStructure n="x"><Bogus/></HPCToolkitStructure>`,
		`<HPCToolkitStructure n="x"><P l="zz"/></HPCToolkitStructure>`,
		`<HPCToolkitStructure n="x"><P v="nonsense"/></HPCToolkitStructure>`,
		`<HPCToolkitStructure n="x"><P v="0x10-0x5"/></HPCToolkitStructure>`,
	}
	for _, src := range cases {
		if _, err := ReadXML(strings.NewReader(src)); err == nil {
			t.Errorf("ReadXML(%q) succeeded, want error", src)
		}
	}
}

func TestParseRanges(t *testing.T) {
	rs, err := parseRanges("0x10-0x20 0x30-0x34")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0] != (Range{0x10, 0x20}) || rs[1] != (Range{0x30, 0x34}) {
		t.Fatalf("ranges = %+v", rs)
	}
	if formatRanges(rs) != "0x10-0x20 0x30-0x34" {
		t.Fatalf("format = %q", formatRanges(rs))
	}
}

func TestScopeContainsAddr(t *testing.T) {
	s := &Scope{Ranges: []Range{{0x10, 0x20}, {0x40, 0x44}}}
	for _, c := range []struct {
		addr uint64
		want bool
	}{
		{0x0f, false}, {0x10, true}, {0x1f, true}, {0x20, false},
		{0x3f, false}, {0x40, true}, {0x43, true}, {0x44, false},
	} {
		if got := s.ContainsAddr(c.addr); got != c.want {
			t.Errorf("ContainsAddr(0x%x) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestRecoverRejectsInvalidImage(t *testing.T) {
	im := &isa.Image{EntryProc: 5}
	if _, err := Recover(im); err == nil {
		t.Fatal("invalid image accepted")
	}
}

func TestFingerprintRoundTrip(t *testing.T) {
	im := toyImage(t, lower.Options{})
	doc, err := Recover(im)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Fingerprint == 0 || doc.Fingerprint != im.Fingerprint() {
		t.Fatal("fingerprint not recorded")
	}
	var buf bytes.Buffer
	if err := doc.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadXML(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != doc.Fingerprint {
		t.Fatalf("fingerprint changed: %x vs %x", got.Fingerprint, doc.Fingerprint)
	}
	if _, err := ReadXML(strings.NewReader(`<HPCToolkitStructure n="x" fp="zz"/>`)); err == nil {
		t.Fatal("bad fingerprint attr accepted")
	}
}
