// Package structfile is the hpcstruct equivalent: it recovers a program's
// static structure — load module → file → procedure → loop → inlined code →
// statement — from a lowered image, records the address ranges of every
// scope, and serializes the result as an XML structure document. hpcprof's
// stand-in (internal/correlate) resolves sampled PCs against this document
// to fuse dynamic call paths with static structure, exactly the fusion the
// paper's Calling Context View presents (Section III-D).
package structfile

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cfg"
	"repro/internal/intern"
	"repro/internal/isa"
)

// Kind enumerates structure-scope kinds.
type Kind uint8

const (
	// KindRoot is the document root.
	KindRoot Kind = iota
	// KindLM is a load module.
	KindLM
	// KindFile is a source file.
	KindFile
	// KindProc is a procedure.
	KindProc
	// KindLoop is a recovered loop.
	KindLoop
	// KindAlien is inlined code (hpcstruct's "alien" scope).
	KindAlien
	// KindStmt is a statement (one source line's instructions within a
	// context).
	KindStmt
)

func (k Kind) String() string {
	switch k {
	case KindRoot:
		return "root"
	case KindLM:
		return "lm"
	case KindFile:
		return "file"
	case KindProc:
		return "proc"
	case KindLoop:
		return "loop"
	case KindAlien:
		return "alien"
	case KindStmt:
		return "stmt"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Range is a half-open address interval [Lo, Hi).
type Range struct {
	Lo, Hi uint64
}

// Contains reports whether addr lies in the range.
func (r Range) Contains(addr uint64) bool { return addr >= r.Lo && addr < r.Hi }

// Scope is a node of the structure tree.
type Scope struct {
	Kind Kind
	// Name is the module name (LM), file name (File), or procedure name
	// (Proc, Alien). Empty for loops and statements.
	Name string
	// File is the source file of Proc/Loop/Alien/Stmt scopes ("" when
	// unknown, e.g. binary-only procedures).
	File string
	// Line is the defining line: procedure header, loop header,
	// statement line, or — for Alien scopes — the line of the inlined
	// procedure's declaration.
	Line int
	// CallLine is, for Alien scopes, the source line of the call that
	// was inlined away (in the *enclosing* context's file).
	CallLine int
	// NoSource marks procedures with no source information.
	NoSource bool
	// Ranges are the scope's address intervals, sorted and disjoint.
	Ranges []Range
	// Children are sub-scopes ordered by first address.
	Children []*Scope
	// Parent is the enclosing scope (nil at the root); not serialized.
	Parent *Scope

	// NameSym/FileSym are the interned forms of Name/File, populated by
	// Doc.EnsureSyms so that correlation builds CCT keys without
	// re-interning strings per sample.
	NameSym intern.Sym
	FileSym intern.Sym
}

// ContainsAddr reports whether any of the scope's ranges contains addr.
func (s *Scope) ContainsAddr(addr uint64) bool {
	// Ranges are sorted by Lo.
	i := sort.Search(len(s.Ranges), func(i int) bool { return s.Ranges[i].Hi > addr })
	return i < len(s.Ranges) && s.Ranges[i].Contains(addr)
}

// Doc is a whole structure document.
type Doc struct {
	Program string
	// Fingerprint identifies the analyzed image (isa.Image.Fingerprint);
	// zero means unknown.
	Fingerprint uint64
	Root        *Scope

	// indexOnce guards the lazy leafIndex build so a shared document can
	// be resolved from many correlation goroutines at once (the parallel
	// merge pipeline correlates one rank per worker against one Doc).
	indexOnce sync.Once
	leafIndex []leafEntry // built lazily by Resolve

	// symOnce guards EnsureSyms for the same reason: many correlation
	// goroutines share one Doc.
	symOnce sync.Once
}

// EnsureSyms interns every scope's Name and File exactly once per document,
// filling NameSym/FileSym. Safe (and cheap) to call from many goroutines.
func (d *Doc) EnsureSyms() {
	d.symOnce.Do(func() {
		var walk func(s *Scope)
		walk = func(s *Scope) {
			s.NameSym = intern.S(s.Name)
			s.FileSym = intern.S(s.File)
			for _, c := range s.Children {
				walk(c)
			}
		}
		if d.Root != nil {
			walk(d.Root)
		}
	})
}

type leafEntry struct {
	r    Range
	leaf *Scope
}

// Recover analyzes the image and produces its structure document. Loops are
// recovered by dominator analysis (internal/cfg); inlined code is
// reconstructed from the image's provenance records; statements group
// instructions by source line within their innermost context.
func Recover(im *isa.Image) (*Doc, error) {
	if err := im.Validate(); err != nil {
		return nil, fmt.Errorf("structfile: %w", err)
	}
	doc := &Doc{Program: im.Name, Fingerprint: im.Fingerprint(), Root: &Scope{Kind: KindRoot, Name: im.Name}}

	lmScopes := make([]*Scope, len(im.Modules))
	for i, name := range im.Modules {
		lmScopes[i] = &Scope{Kind: KindLM, Name: name, Parent: doc.Root}
		doc.Root.Children = append(doc.Root.Children, lmScopes[i])
	}
	// One File scope per file symbol, plus a synthetic "<unknown>" file
	// per module for binary-only procedures.
	fileScopes := make([]*Scope, len(im.Files))
	for i, f := range im.Files {
		fs := &Scope{Kind: KindFile, Name: f.Name, Parent: lmScopes[f.Module]}
		lmScopes[f.Module].Children = append(lmScopes[f.Module].Children, fs)
		fileScopes[i] = fs
	}
	unknownFile := map[int32]*Scope{}
	fileFor := func(file int32, module int32) *Scope {
		if file != isa.NoFile {
			return fileScopes[file]
		}
		if fs, ok := unknownFile[module]; ok {
			return fs
		}
		fs := &Scope{Kind: KindFile, Name: "", Parent: lmScopes[module], NoSource: true}
		lmScopes[module].Children = append(lmScopes[module].Children, fs)
		unknownFile[module] = fs
		return fs
	}

	for pi := range im.Procs {
		if err := recoverProc(im, int32(pi), fileFor, fileScopes); err != nil {
			return nil, err
		}
	}

	finalize(doc.Root)
	return doc, nil
}

// childKey identifies a child scope within its parent during recovery.
type childKey struct {
	kind Kind
	id   int32 // loop head instr (Loop) or inline node id (Alien)
	file int32
	line int32
}

func recoverProc(im *isa.Image, pi int32, fileFor func(file, module int32) *Scope, fileScopes []*Scope) error {
	sym := im.Procs[pi]
	module := int32(0)
	if sym.File != isa.NoFile {
		module = im.Files[sym.File].Module
	}
	parentFile := fileFor(sym.File, module)
	procScope := &Scope{
		Kind:     KindProc,
		Name:     sym.Name,
		File:     parentFile.Name,
		Line:     int(sym.Line),
		NoSource: sym.File == isa.NoFile,
		Parent:   parentFile,
	}
	parentFile.Children = append(parentFile.Children, procScope)

	g, err := cfg.Build(im, pi)
	if err != nil {
		return err
	}
	forest := g.NaturalLoops()

	children := map[*Scope]map[childKey]*Scope{}
	getChild := func(parent *Scope, key childKey, mk func() *Scope) *Scope {
		m := children[parent]
		if m == nil {
			m = map[childKey]*Scope{}
			children[parent] = m
		}
		if c, ok := m[key]; ok {
			return c
		}
		c := mk()
		c.Parent = parent
		parent.Children = append(parent.Children, c)
		m[key] = c
		return c
	}

	fileName := func(fid int32) string {
		if fid == isa.NoFile {
			return ""
		}
		return im.Files[fid].Name
	}

	for i := sym.Start; i < sym.End; i++ {
		instr := &im.Code[i]
		loops := forest.Chain(i)
		inlineIDs := im.InlineChainIDs(i)

		// Interleave inline frames and loops by the inline depth at
		// which each loop's control resides, reconstructing structures
		// like Figure 5's loop -> inlined find -> inlined loop ->
		// inlined compare hierarchy.
		cur := procScope
		consumed := 0
		emitAliens := func(upto int) {
			for ; consumed < upto && consumed < len(inlineIDs); consumed++ {
				id := inlineIDs[consumed]
				node := im.Inlines[id]
				cur = getChild(cur, childKey{kind: KindAlien, id: id}, func() *Scope {
					return &Scope{
						Kind:     KindAlien,
						Name:     node.Proc,
						File:     fileName(node.File),
						Line:     int(node.DeclLine),
						CallLine: int(node.CallLine),
					}
				})
			}
		}
		for _, l := range loops {
			loop := l
			emitAliens(im.InlineDepth(loop.Inline))
			head := g.Blocks[loop.Head].Start
			cur = getChild(cur, childKey{kind: KindLoop, id: head}, func() *Scope {
				return &Scope{
					Kind: KindLoop,
					File: fileName(loop.File),
					Line: int(loop.Line),
				}
			})
		}
		emitAliens(len(inlineIDs))

		stmt := getChild(cur, childKey{kind: KindStmt, file: instr.File, line: instr.Line}, func() *Scope {
			return &Scope{Kind: KindStmt, File: fileName(instr.File), Line: int(instr.Line)}
		})

		// Charge the instruction's address interval to the whole path.
		lo, hi := im.Addr(i), im.Addr(i+1)
		for s := stmt; s != nil && s.Kind != KindFile; s = s.Parent {
			addRange(s, lo, hi)
		}
	}
	return nil
}

// addRange appends [lo,hi), coalescing with the last range when adjacent.
// Instructions are visited in ascending address order, so appending keeps
// ranges sorted.
func addRange(s *Scope, lo, hi uint64) {
	if n := len(s.Ranges); n > 0 && s.Ranges[n-1].Hi == lo {
		s.Ranges[n-1].Hi = hi
		return
	}
	s.Ranges = append(s.Ranges, Range{Lo: lo, Hi: hi})
}

// finalize orders children by first address (statements and loops appear in
// code order) and propagates nothing else; ranges are already coalesced.
func finalize(s *Scope) {
	sort.SliceStable(s.Children, func(i, j int) bool {
		a, b := s.Children[i], s.Children[j]
		al, bl := firstAddr(a), firstAddr(b)
		if al != bl {
			return al < bl
		}
		return a.Line < b.Line
	})
	for _, c := range s.Children {
		finalize(c)
	}
}

func firstAddr(s *Scope) uint64 {
	if len(s.Ranges) > 0 {
		return s.Ranges[0].Lo
	}
	min := uint64(1<<63 - 1)
	for _, c := range s.Children {
		if a := firstAddr(c); a < min {
			min = a
		}
	}
	return min
}

// Resolution is the static context of one address: the load module, file
// and procedure containing it, the chain of loop/alien scopes from
// outermost to innermost, and the statement.
type Resolution struct {
	LM    *Scope
	File  *Scope
	Proc  *Scope
	Chain []*Scope // loops and aliens, outermost first
	Stmt  *Scope
}

// Resolve maps an address to its static context. The second result is
// false when the address is not covered by the document.
func (d *Doc) Resolve(addr uint64) (Resolution, bool) {
	d.indexOnce.Do(d.buildIndex)
	i := sort.Search(len(d.leafIndex), func(i int) bool { return d.leafIndex[i].r.Hi > addr })
	if i >= len(d.leafIndex) || !d.leafIndex[i].r.Contains(addr) {
		return Resolution{}, false
	}
	stmt := d.leafIndex[i].leaf
	res := Resolution{Stmt: stmt}
	for s := stmt.Parent; s != nil; s = s.Parent {
		switch s.Kind {
		case KindLoop, KindAlien:
			res.Chain = append(res.Chain, s)
		case KindProc:
			res.Proc = s
		case KindFile:
			res.File = s
		case KindLM:
			res.LM = s
		}
	}
	for i, j := 0, len(res.Chain)-1; i < j; i, j = i+1, j-1 {
		res.Chain[i], res.Chain[j] = res.Chain[j], res.Chain[i]
	}
	return res, true
}

func (d *Doc) buildIndex() {
	var walk func(s *Scope)
	walk = func(s *Scope) {
		if s.Kind == KindStmt {
			for _, r := range s.Ranges {
				d.leafIndex = append(d.leafIndex, leafEntry{r: r, leaf: s})
			}
			return
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(d.Root)
	sort.Slice(d.leafIndex, func(i, j int) bool { return d.leafIndex[i].r.Lo < d.leafIndex[j].r.Lo })
	if d.leafIndex == nil {
		d.leafIndex = []leafEntry{}
	}
}

// FindProc returns the procedure scope with the given name, or nil.
func (d *Doc) FindProc(name string) *Scope {
	var found *Scope
	var walk func(s *Scope)
	walk = func(s *Scope) {
		if found != nil {
			return
		}
		if s.Kind == KindProc && s.Name == name {
			found = s
			return
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(d.Root)
	return found
}

// Stats summarizes a document for logging and tests.
type Stats struct {
	LMs, Files, Procs, Loops, Aliens, Stmts int
}

// Stats counts scopes by kind.
func (d *Doc) Stats() Stats {
	var st Stats
	var walk func(s *Scope)
	walk = func(s *Scope) {
		switch s.Kind {
		case KindLM:
			st.LMs++
		case KindFile:
			st.Files++
		case KindProc:
			st.Procs++
		case KindLoop:
			st.Loops++
		case KindAlien:
			st.Aliens++
		case KindStmt:
			st.Stmts++
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(d.Root)
	return st
}
