package structfile

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/lower"
	"repro/internal/prog"
)

// FuzzReadXML guards the structure-file reader: arbitrary XML must parse
// or error without panicking, and anything accepted must survive a
// write/read cycle.
func FuzzReadXML(f *testing.F) {
	p := prog.NewBuilder("fz").
		File("a.c").
		Proc("main", 1, prog.L(2, 3, prog.W(3, 1))).
		Entry("main").MustBuild()
	im, err := lower.Lower(p, lower.Options{})
	if err != nil {
		f.Fatal(err)
	}
	doc, err := Recover(im)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := doc.WriteXML(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`<HPCToolkitStructure n="x"><LM n="m"><F n="a.c"><P n="p" l="1" v="0x0-0x4"/></F></LM></HPCToolkitStructure>`)
	f.Add(`<HPCToolkitStructure`)
	f.Add(`<HPCToolkitStructure n="x"><P v="0x10-0x5"/></HPCToolkitStructure>`)
	f.Fuzz(func(t *testing.T, src string) {
		got, err := ReadXML(strings.NewReader(src))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.WriteXML(&out); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		// Resolution over arbitrary accepted documents must not panic.
		got.Resolve(0x400000)
		got.Stats()
	})
}
