package sampler

import (
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/lower"
	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/sim"
)

func mustLower(t *testing.T, p *prog.Program) *isa.Image {
	t.Helper()
	im, err := lower.Lower(p, lower.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func runSampled(t *testing.T, im *isa.Image, events []EventConfig, cfg sim.Config) (*sim.VM, *Sampler) {
	t.Helper()
	s, err := New(im.Name, 0, 0, events)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Observer = s
	vm, err := sim.New(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	return vm, s
}

// walkNodes visits every trie node depth-first.
func walkNodes(root *profile.Node, f func(n *profile.Node)) {
	stack := []*profile.Node{root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		f(n)
		stack = append(stack, n.Children()...)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("x", 0, 0, nil); err == nil {
		t.Fatal("no events accepted")
	}
	if _, err := New("x", 0, 0, []EventConfig{{Event: sim.EvCycles, Period: 0}}); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := New("x", 0, 0, []EventConfig{{Event: sim.Event(99), Period: 10}}); err == nil {
		t.Fatal("unknown event accepted")
	}
}

func TestSampledTotalsTrackTrueCounts(t *testing.T) {
	// 100k cycles of work in a loop; with period 100 the sampled total
	// must match the true count closely.
	im := mustLower(t, prog.NewBuilder("t").
		File("a.c").
		Proc("main", 1,
			prog.L(2, 1000, prog.W(3, 100))).
		Entry("main").MustBuild())
	vm, s := runSampled(t, im, []EventConfig{{Event: sim.EvCycles, Period: 100}}, sim.Config{})
	truth := float64(vm.Counters[sim.EvCycles])
	got := float64(s.Profile().Totals()[0])
	if math.Abs(truth-got) > 100 {
		t.Fatalf("sampled %v, true %v", got, truth)
	}
	if err := s.Profile().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSamplingAttributesToHotContext(t *testing.T) {
	// hot() burns 99% of cycles; cold() 1%. The profile subtree under
	// the call to hot must dominate.
	im := mustLower(t, prog.NewBuilder("h").
		File("a.c").
		Proc("hot", 10, prog.L(11, 99, prog.W(12, 100))).
		Proc("cold", 20, prog.W(21, 100)).
		Proc("main", 1, prog.C(2, "hot"), prog.C(3, "cold")).
		Entry("main").MustBuild())
	_, s := runSampled(t, im, []EventConfig{{Event: sim.EvCycles, Period: 50}}, sim.Config{})
	prof := s.Profile()

	var hotCount, coldCount uint64
	for _, child := range prof.Root.Children() {
		idx := im.Index(child.CallPC)
		callee := im.Procs[im.Code[idx].A].Name
		var sum uint64
		for _, row := range child.Samples() {
			sum += row.Counts[0]
		}
		switch callee {
		case "hot":
			hotCount = sum
		case "cold":
			coldCount = sum
		}
	}
	if hotCount < 90*coldCount {
		t.Fatalf("hot=%d cold=%d: attribution wrong", hotCount, coldCount)
	}
}

func TestSamplingSeparatesCallingContexts(t *testing.T) {
	// leaf is called from three distinct call sites; the trie must keep
	// three distinct frames for it.
	im := mustLower(t, prog.NewBuilder("ctx").
		File("a.c").
		Proc("leaf", 10, prog.L(11, 10, prog.W(12, 10))).
		Proc("a", 20, prog.C(21, "leaf")).
		Proc("b", 30, prog.C(31, "leaf"), prog.C(32, "leaf")).
		Proc("main", 1, prog.C(2, "a"), prog.C(3, "b")).
		Entry("main").MustBuild())
	_, s := runSampled(t, im, []EventConfig{{Event: sim.EvCycles, Period: 10}}, sim.Config{})

	leafFrames := 0
	walkNodes(s.Profile().Root, func(n *profile.Node) {
		if n.CallPC == 0 {
			return
		}
		idx := im.Index(n.CallPC)
		if idx >= 0 && im.Code[idx].Op == isa.OpCall && im.Procs[im.Code[idx].A].Name == "leaf" {
			leafFrames++
		}
	})
	if leafFrames != 3 {
		t.Fatalf("leaf frames = %d, want 3", leafFrames)
	}
}

func TestMultiEventSampling(t *testing.T) {
	im := mustLower(t, prog.NewBuilder("me").
		File("a.c").
		Proc("main", 1,
			prog.L(2, 100, prog.Wc(3, prog.Cost{Cycles: 100, FLOPs: 50, L1Miss: 10, Instr: 100}))).
		Entry("main").MustBuild())
	events := []EventConfig{
		{Event: sim.EvCycles, Period: 100},
		{Event: sim.EvFLOPs, Period: 100},
		{Event: sim.EvL1Miss, Period: 50},
	}
	vm, s := runSampled(t, im, events, sim.Config{})
	tot := s.Profile().Totals()
	for i, ev := range []sim.Event{sim.EvCycles, sim.EvFLOPs, sim.EvL1Miss} {
		truth := float64(vm.Counters[ev])
		got := float64(tot[i])
		if truth == 0 {
			continue
		}
		if math.Abs(truth-got)/truth > 0.05 {
			t.Fatalf("event %v: sampled %v vs true %v", ev, got, truth)
		}
	}
}

func TestSamplerMetricMetadata(t *testing.T) {
	s, err := New("app", 3, 1, DefaultEvents(1000))
	if err != nil {
		t.Fatal(err)
	}
	p := s.Profile()
	if p.Rank != 3 || p.Thread != 1 || p.Program != "app" {
		t.Fatalf("profile identity wrong: %+v", p)
	}
	if p.MetricIndex("CYCLES") < 0 || p.MetricIndex("IDLE") < 0 {
		t.Fatal("default events missing expected metrics")
	}
	for _, m := range p.Metrics {
		if m.Period == 0 {
			t.Fatalf("metric %s has zero period", m.Name)
		}
	}
}

func TestDefaultEventsZeroBase(t *testing.T) {
	evs := DefaultEvents(0)
	if len(evs) == 0 || evs[0].Period == 0 {
		t.Fatal("zero base period not defaulted")
	}
}

func TestSampleCountsAreMultiplesOfPeriod(t *testing.T) {
	im := mustLower(t, prog.NewBuilder("mp").
		File("a.c").
		Proc("main", 1, prog.L(2, 137, prog.W(3, 7))).
		Entry("main").MustBuild())
	const period = 100
	_, s := runSampled(t, im, []EventConfig{{Event: sim.EvCycles, Period: period}}, sim.Config{})
	walkNodes(s.Profile().Root, func(n *profile.Node) {
		for _, row := range n.Samples() {
			if row.Counts[0]%period != 0 {
				t.Fatalf("sample count %d not a multiple of %d", row.Counts[0], period)
			}
		}
	})
	if s.Samples() == 0 {
		t.Fatal("no samples taken")
	}
}

func TestSamplesLandOnlyOnCostBearingInstructions(t *testing.T) {
	im := mustLower(t, prog.NewBuilder("cb").
		File("a.c").
		Proc("leaf", 10, prog.W(11, 50)).
		Proc("main", 1, prog.L(2, 40, prog.C(3, "leaf"))).
		Entry("main").MustBuild())
	_, s := runSampled(t, im, []EventConfig{{Event: sim.EvCycles, Period: 75}}, sim.Config{})
	walkNodes(s.Profile().Root, func(n *profile.Node) {
		for _, row := range n.Samples() {
			idx := im.Index(row.PC)
			if idx < 0 {
				t.Fatalf("sample PC 0x%x outside image", row.PC)
			}
			op := im.Code[idx].Op
			if op != isa.OpWork && op != isa.OpBarrier {
				t.Fatalf("sample landed on %v", op)
			}
		}
	})
}
