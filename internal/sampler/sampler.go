// Package sampler implements asynchronous event-based sampling over the
// execution simulator, the hpcrun substitute. Each configured event has an
// overflow period; whenever an event counter crosses its next threshold the
// sampler unwinds the simulated call stack and attributes one period's
// worth of events to the sampled (call path, instruction) context — the
// same attribution PAPI-overflow-driven sampling performs, including the
// property that samples land on whatever instruction happened to cross the
// threshold.
package sampler

import (
	"fmt"

	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// EventConfig selects one event and its sampling period.
type EventConfig struct {
	Event  sim.Event
	Period uint64
}

// DefaultEvents returns the standard measurement set used by the examples
// and benchmarks: cycles, FLOPs, L1/L2 misses and idleness. The base period
// applies to cycles; other events use proportionally smaller periods, as a
// tool would configure rarer events.
func DefaultEvents(basePeriod uint64) []EventConfig {
	if basePeriod == 0 {
		basePeriod = 1000
	}
	div := func(d uint64) uint64 {
		p := basePeriod / d
		if p == 0 {
			p = 1
		}
		return p
	}
	return []EventConfig{
		{Event: sim.EvCycles, Period: basePeriod},
		{Event: sim.EvFLOPs, Period: basePeriod},
		{Event: sim.EvL1Miss, Period: div(10)},
		{Event: sim.EvL2Miss, Period: div(100)},
		{Event: sim.EvIdle, Period: basePeriod},
	}
}

// Sampler accumulates a raw call path profile; attach it to a VM via
// sim.Config.Observer.
type Sampler struct {
	prof     *profile.Profile
	events   []EventConfig
	next     []uint64
	pathBuf  []uint64
	samples  uint64
	traceEv  int // event index whose crossings emit trace events, -1 off
	traceErr error
}

// New creates a sampler for one thread of execution.
func New(program string, rank, thread int, events []EventConfig) (*Sampler, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("sampler: no events configured")
	}
	metrics := make([]profile.MetricInfo, len(events))
	next := make([]uint64, len(events))
	for i, e := range events {
		if e.Period == 0 {
			return nil, fmt.Errorf("sampler: event %v has zero period", e.Event)
		}
		if e.Event < 0 || e.Event >= sim.NumEvents {
			return nil, fmt.Errorf("sampler: unknown event %d", e.Event)
		}
		metrics[i] = profile.MetricInfo{Name: e.Event.String(), Unit: unitOf(e.Event), Period: e.Period}
		next[i] = e.Period
	}
	return &Sampler{
		prof:    profile.NewProfile(program, rank, thread, metrics),
		events:  events,
		next:    next,
		traceEv: -1,
	}, nil
}

// EnableTrace turns on time-dimension trace capture: every sample of the
// cycles event (the first configured event when cycles is absent) also
// emits a (time, call-path, depth) record into spill, timestamped by the
// VM's monotonic cycle counter. Peak capture memory is the recorder
// buffer (bufRecords records; 0 means the default), never O(events).
func (s *Sampler) EnableTrace(spill trace.SpillStore, bufRecords int) {
	s.traceEv = 0
	for i, e := range s.events {
		if e.Event == sim.EvCycles {
			s.traceEv = i
			break
		}
	}
	s.prof.EnableTrace(spill, bufRecords)
}

// TraceErr reports the first trace emission failure (spill I/O), if any.
func (s *Sampler) TraceErr() error { return s.traceErr }

func unitOf(e sim.Event) string {
	switch e {
	case sim.EvCycles, sim.EvIdle:
		return "cycles"
	case sim.EvFLOPs:
		return "ops"
	case sim.EvL1Miss, sim.EvL2Miss:
		return "misses"
	case sim.EvInstr:
		return "instructions"
	}
	return ""
}

// OnCost implements sim.Observer: it checks every configured event for
// threshold crossings and records samples at the current context.
func (s *Sampler) OnCost(vm *sim.VM, idx int32, delta *sim.Counters) {
	if s.prof.Fingerprint == 0 {
		s.prof.Fingerprint = vm.Image().Fingerprint()
	}
	var path []uint64
	for i, e := range s.events {
		if delta[e.Event] == 0 {
			continue
		}
		cur := vm.Counters.Get(e.Event)
		if cur < s.next[i] {
			continue
		}
		// The counter may have crossed several thresholds within one
		// work instruction; attribute them all here (hardware would
		// deliver the overflows at nearby PCs — skid).
		k := (cur-s.next[i])/e.Period + 1
		s.next[i] += k * e.Period
		if path == nil {
			path = vm.CallPath(s.pathBuf[:0])
			s.pathBuf = path
		}
		n := s.prof.Record(path, vm.Image().Addr(idx), i, k*e.Period)
		s.samples += k
		if i == s.traceEv && s.traceErr == nil {
			// One trace event per delivery, stamped with the monotonic
			// virtual cycle clock; k>1 crossings still mean one stack
			// unwind, hence one visible sample. cur is that clock when
			// the traced event is cycles itself (the usual case).
			t := cur
			if e.Event != sim.EvCycles {
				t = vm.Counters.Get(sim.EvCycles)
			}
			if err := s.prof.Trace.Emit(t, n, len(path)); err != nil {
				s.traceErr = err
			}
		}
	}
}

// Profile returns the accumulated raw profile.
func (s *Sampler) Profile() *profile.Profile { return s.prof }

// Samples reports how many samples have been taken (across all events).
func (s *Sampler) Samples() uint64 { return s.samples }
