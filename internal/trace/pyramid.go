package trace

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// The zoom pyramid is a per-rank mipmap over time. Level 0 divides the
// rank's time span [0, LastT] into NBuckets buckets of Width virtual-time
// units each; every higher level halves the bucket count (rounding up) and
// doubles the width. Each bucket keeps the *representative* call path of
// its span — the deepest sampled path, ties broken toward more samples and
// then toward earlier time — plus a saturating sample count. This is the
// same downsampling hpctraceviewer performs on the fly per repaint, done
// once at finalize time so a zoomed-out render touches O(pixels) buckets
// instead of O(events) records.
//
// Invariants (checked by the property tests and relied on by View):
//
//  1. NBuckets is a power of two, at most MaxBaseBuckets, so every level
//     above base is an exact pairwise merge and the level count is
//     log2(NBuckets)+1 ≤ MaxLevels.
//  2. Width ≥ 1 and NBuckets·Width > LastT: every event lands in a bucket.
//  3. Level l bucket i summarizes exactly base buckets [i·2^l, (i+1)·2^l);
//     merging is associative on that grouping, so building level l from
//     level l−1 equals building it from level 0.
//  4. Representative choice is deterministic: records arrive in time
//     order, so "deeper wins, tie keeps more samples, tie keeps earlier"
//     has one answer regardless of buffering.

// Bucket is one pyramid cell. The on-disk encoding is 8 little-endian
// bytes — CPID u32 | Depth u16 | Samples u16 — mirrored by the struct
// layout so mapped pyramid sections can be viewed in place.
type Bucket struct {
	CPID    uint32
	Depth   uint16
	Samples uint16 // saturating at 65535
}

// BucketSize is the fixed on-disk size of one pyramid bucket.
const BucketSize = 8

// EmptyCPID marks a bucket (or view cell) with no samples.
const EmptyCPID = ^uint32(0)

// MaxBaseBuckets caps the base resolution of a rank's pyramid: 65536
// buckets × 8 bytes ≈ 512 KiB of pyramid per rank across all levels, and
// any render window maps onto at most MaxBaseBuckets direct array
// accesses.
const MaxBaseBuckets = 1 << 16

// MaxLevels bounds the level count (log2(MaxBaseBuckets)+1): levels are
// stored in a section index plane byte, which holds far more.
const MaxLevels = 17

// Empty reports whether the bucket holds no samples.
func (b Bucket) Empty() bool { return b.CPID == EmptyCPID }

// AppendBucket appends b's 8-byte little-endian encoding to dst.
func AppendBucket(dst []byte, b Bucket) []byte {
	var e [BucketSize]byte
	binary.LittleEndian.PutUint32(e[0:4], b.CPID)
	binary.LittleEndian.PutUint16(e[4:6], b.Depth)
	binary.LittleEndian.PutUint16(e[6:8], b.Samples)
	return append(dst, e[:]...)
}

// DecodeBucket decodes one bucket from b, which must hold at least
// BucketSize bytes.
func DecodeBucket(b []byte) Bucket {
	return Bucket{
		CPID:    binary.LittleEndian.Uint32(b[0:4]),
		Depth:   binary.LittleEndian.Uint16(b[4:6]),
		Samples: binary.LittleEndian.Uint16(b[6:8]),
	}
}

// Meta describes one rank's trace and pyramid geometry. It is what the
// tracemeta v3 section stores per rank.
type Meta struct {
	Rank     int
	Count    uint64 // trace records in the rank's trace section
	LastT    uint64 // timestamp of the last record (0 when Count is 0)
	NBuckets uint32 // base-level bucket count (power of two)
	Width    uint64 // base-level bucket width in virtual-time units
}

// Levels reports the pyramid level count for the meta's base resolution.
func (m Meta) Levels() int {
	if m.NBuckets == 0 {
		return 0
	}
	return bits.Len32(m.NBuckets-1) + 1
}

// BaseBuckets picks the base-level bucket count for a trace of count
// events: the next power of two, capped at MaxBaseBuckets. More buckets
// than events buys nothing; fewer than the cap keeps tiny traces tiny.
func BaseBuckets(count uint64) uint32 {
	if count == 0 {
		return 0
	}
	if count >= MaxBaseBuckets {
		return MaxBaseBuckets
	}
	return 1 << bits.Len64(count-1)
}

// BaseWidth picks the base bucket width so every timestamp in [0, lastT]
// lands inside the nb buckets: the smallest width with nb·width > lastT.
func BaseWidth(lastT uint64, nb uint32) uint64 {
	if nb == 0 {
		return 1
	}
	return lastT/uint64(nb) + 1
}

// LevelBuckets reports the bucket count of level l for a base of nb
// buckets; readers use it to validate mapped pyramid section lengths.
func LevelBuckets(nb uint32, l int) int {
	n := int(nb)
	for i := 0; i < l; i++ {
		n = (n + 1) / 2
	}
	return n
}

// mergeInto folds record r into bucket b.
func mergeInto(b *Bucket, r Rec) {
	if b.Samples < 65535 {
		b.Samples++
	}
	// Deeper wins; records arrive in time order, so ties keep the
	// earlier (already stored) representative.
	if b.Empty() || r.Depth > b.Depth {
		b.CPID = r.CPID
		b.Depth = r.Depth
	}
}

// MergeBucket combines two adjacent buckets (a earlier than b) into their
// parent, deterministically: deeper representative wins, ties keep the
// bucket with more samples, final ties keep the earlier bucket.
func MergeBucket(a, b Bucket) Bucket {
	s := uint32(a.Samples) + uint32(b.Samples)
	if s > 65535 {
		s = 65535
	}
	out := a
	if a.Empty() || (!b.Empty() && (b.Depth > a.Depth || (b.Depth == a.Depth && b.Samples > a.Samples))) {
		out = b
	}
	out.Samples = uint16(s)
	return out
}

// Builder accumulates one rank's pyramid in a single streaming pass over
// its time-ordered records, then derives the higher levels by pairwise
// merges. Memory is O(NBuckets), independent of the event count.
type Builder struct {
	meta Meta
	base []Bucket
}

// NewBuilder sizes a pyramid for a trace of count events ending at lastT.
// Both values must be known up front (the trace section header carries
// them) so the base geometry is fixed before the first record arrives.
func NewBuilder(rank int, count, lastT uint64) *Builder {
	nb := BaseBuckets(count)
	m := Meta{Rank: rank, Count: count, LastT: lastT, NBuckets: nb, Width: BaseWidth(lastT, nb)}
	base := make([]Bucket, nb)
	for i := range base {
		base[i].CPID = EmptyCPID
	}
	return &Builder{meta: m, base: base}
}

// Add folds one record into the base level. Records must satisfy the
// geometry declared to NewBuilder (t ≤ lastT).
func (pb *Builder) Add(r Rec) error {
	if len(pb.base) == 0 {
		return fmt.Errorf("trace: record added to empty pyramid")
	}
	i := r.T / pb.meta.Width
	if i >= uint64(len(pb.base)) {
		return fmt.Errorf("trace: event time %d outside declared span %d", r.T, pb.meta.LastT)
	}
	mergeInto(&pb.base[i], r)
	return nil
}

// Finish derives the upper levels and returns every level, finest first.
// Level l has ceil(NBuckets/2^l) buckets; the coarsest has one.
func (pb *Builder) Finish() (Meta, [][]Bucket) {
	if len(pb.base) == 0 {
		return pb.meta, nil
	}
	levels := [][]Bucket{pb.base}
	for len(levels[len(levels)-1]) > 1 {
		levels = append(levels, Downsample(levels[len(levels)-1]))
	}
	return pb.meta, levels
}

// Downsample builds the next-coarser level from src by merging adjacent
// pairs; an odd trailing bucket is carried up unchanged.
func Downsample(src []Bucket) []Bucket {
	dst := make([]Bucket, (len(src)+1)/2)
	for i := range dst {
		a := src[2*i]
		if 2*i+1 < len(src) {
			dst[i] = MergeBucket(a, src[2*i+1])
		} else {
			dst[i] = a
		}
	}
	return dst
}

// EncodeLevel returns the on-disk encoding of one pyramid level.
func EncodeLevel(level []Bucket) []byte {
	out := make([]byte, 0, len(level)*BucketSize)
	for _, b := range level {
		out = AppendBucket(out, b)
	}
	return out
}
