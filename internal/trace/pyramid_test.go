package trace

import (
	"testing"
)

func TestBaseGeometry(t *testing.T) {
	cases := []struct {
		count uint64
		nb    uint32
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8},
		{65535, 65536}, {65536, 65536}, {1 << 30, 65536},
	}
	for _, c := range cases {
		if got := BaseBuckets(c.count); got != c.nb {
			t.Errorf("BaseBuckets(%d) = %d, want %d", c.count, got, c.nb)
		}
	}
	// Every t in [0, lastT] must land inside nb buckets of width w.
	for _, lastT := range []uint64{0, 1, 7, 65535, 65536, 1 << 40} {
		for _, nb := range []uint32{1, 2, 64, 65536} {
			w := BaseWidth(lastT, nb)
			if w == 0 {
				t.Fatalf("BaseWidth(%d,%d) = 0", lastT, nb)
			}
			if lastT/w >= uint64(nb) {
				t.Errorf("lastT %d, nb %d, width %d: last bucket %d out of range", lastT, nb, w, lastT/w)
			}
		}
	}
}

func TestMergeBucketRules(t *testing.T) {
	e := Bucket{CPID: EmptyCPID}
	a := Bucket{CPID: 1, Depth: 3, Samples: 2}
	b := Bucket{CPID: 2, Depth: 5, Samples: 1}
	if got := MergeBucket(a, b); got.CPID != 2 || got.Depth != 5 || got.Samples != 3 {
		t.Errorf("deeper must win: %+v", got)
	}
	if got := MergeBucket(b, a); got.CPID != 2 || got.Samples != 3 {
		t.Errorf("deeper must win regardless of side: %+v", got)
	}
	c := Bucket{CPID: 9, Depth: 3, Samples: 7}
	if got := MergeBucket(a, c); got.CPID != 9 {
		t.Errorf("equal depth: more samples must win: %+v", got)
	}
	d := Bucket{CPID: 8, Depth: 3, Samples: 2}
	if got := MergeBucket(a, d); got.CPID != 1 {
		t.Errorf("full tie: earlier (left) must win: %+v", got)
	}
	if got := MergeBucket(e, a); got.CPID != 1 || got.Samples != 2 {
		t.Errorf("empty left: %+v", got)
	}
	if got := MergeBucket(a, e); got.CPID != 1 || got.Samples != 2 {
		t.Errorf("empty right: %+v", got)
	}
	if got := MergeBucket(e, e); !got.Empty() {
		t.Errorf("empty pair: %+v", got)
	}
	s := Bucket{CPID: 1, Depth: 1, Samples: 65000}
	if got := MergeBucket(s, Bucket{CPID: 2, Depth: 1, Samples: 65000}); got.Samples != 65535 {
		t.Errorf("samples must saturate: %d", got.Samples)
	}
}

// buildFromRecs streams recs through a Builder.
func buildFromRecs(t *testing.T, rank int, recs []Rec) (Meta, [][]Bucket) {
	t.Helper()
	var lastT uint64
	if len(recs) > 0 {
		lastT = recs[len(recs)-1].T
	}
	pb := NewBuilder(rank, uint64(len(recs)), lastT)
	for _, r := range recs {
		if err := pb.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	return pb.Finish()
}

// lcg is a tiny deterministic generator for property inputs.
type lcg uint64

func (l *lcg) next() uint64 { *l = *l*6364136223846793005 + 1442695040888963407; return uint64(*l) }

func randRecs(n int, seed uint64) []Rec {
	g := lcg(seed)
	recs := make([]Rec, n)
	t := uint64(0)
	for i := range recs {
		t += g.next() % 1000
		recs[i] = Rec{T: t, CPID: uint32(g.next() % 50), Depth: uint16(g.next() % 30)}
	}
	return recs
}

// TestPyramidLevelInvariant checks invariant 3: every level equals the
// fold of its base-bucket group, i.e. repeated Downsample from base.
func TestPyramidLevelInvariant(t *testing.T) {
	for _, n := range []int{1, 2, 3, 17, 1000, 70000} {
		recs := randRecs(n, uint64(n))
		meta, levels := buildFromRecs(t, 0, recs)
		if meta.Count != uint64(n) {
			t.Fatalf("meta count %d, want %d", meta.Count, n)
		}
		if got, want := len(levels), meta.Levels(); got != want {
			t.Fatalf("n=%d: %d levels, want %d", n, got, want)
		}
		for l := 1; l < len(levels); l++ {
			if got, want := len(levels[l]), LevelBuckets(meta.NBuckets, l); got != want {
				t.Fatalf("n=%d level %d: %d buckets, want %d", n, l, got, want)
			}
			want := Downsample(levels[l-1])
			for i := range want {
				if levels[l][i] != want[i] {
					t.Fatalf("n=%d level %d bucket %d: %+v != downsample %+v", n, l, i, levels[l][i], want[i])
				}
			}
		}
		if len(levels[len(levels)-1]) != 1 {
			t.Fatalf("n=%d: coarsest level has %d buckets", n, len(levels[len(levels)-1]))
		}
		// The coarsest bucket must carry the (saturated) total count and
		// the global max depth.
		top := levels[len(levels)-1][0]
		wantSamples := n
		if wantSamples > 65535 {
			wantSamples = 65535
		}
		if int(top.Samples) != wantSamples {
			t.Fatalf("n=%d: coarsest samples %d, want %d", n, top.Samples, wantSamples)
		}
		var maxD uint16
		for _, r := range recs {
			if r.Depth > maxD {
				maxD = r.Depth
			}
		}
		if top.Depth != maxD {
			t.Fatalf("n=%d: coarsest depth %d, want %d", n, top.Depth, maxD)
		}
	}
}

func TestPyramidRejectsOutOfSpan(t *testing.T) {
	pb := NewBuilder(0, 4, 100)
	if err := pb.Add(Rec{T: 100}); err != nil {
		t.Fatalf("t == lastT must fit: %v", err)
	}
	nb := BaseBuckets(4)
	if err := pb.Add(Rec{T: BaseWidth(100, nb) * uint64(nb)}); err == nil {
		t.Fatal("event beyond declared span accepted")
	}
}

func TestEncodeLevelRoundTrip(t *testing.T) {
	_, levels := buildFromRecs(t, 3, randRecs(500, 9))
	for l, lv := range levels {
		enc := EncodeLevel(lv)
		got := BucketsFromBytes(enc)
		for i := range lv {
			if got[i] != lv[i] {
				t.Fatalf("level %d bucket %d: %+v != %+v", l, i, got[i], lv[i])
			}
		}
	}
}
