// Package trace implements the time-dimension trace engine: bounded-memory
// capture of per-rank call-path sample events, a multi-resolution zoom
// pyramid computed at finalize time, and an O(pixels) time×rank view
// kernel that renders any zoom window of a multi-million-event trace at a
// cost proportional to the pixel budget, never the event count.
//
// The package is a leaf: it knows nothing about profiles, trees, or
// databases. Call paths appear only as opaque uint32 ids; the layers above
// (profile capture, hpcprof merge, expdb v3 sections) assign and rewrite
// those ids.
package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"unsafe"
)

// Rec is one trace event: at virtual time T, the rank's innermost sampled
// call path was CPID at stack depth Depth. The on-disk encoding is exactly
// 16 little-endian bytes:
//
//	T u64 | CPID u32 | Depth u16 | flags u16 (reserved, written zero)
//
// The in-memory struct mirrors that layout field for field so a mapped
// section can be viewed in place on little-endian hosts.
type Rec struct {
	T     uint64
	CPID  uint32
	Depth uint16
	Flags uint16 // reserved; writers emit 0, readers ignore
}

// RecSize is the fixed on-disk size of one trace record.
const RecSize = 16

// AppendRec appends r's 16-byte little-endian encoding to dst.
func AppendRec(dst []byte, r Rec) []byte {
	var b [RecSize]byte
	binary.LittleEndian.PutUint64(b[0:8], r.T)
	binary.LittleEndian.PutUint32(b[8:12], r.CPID)
	binary.LittleEndian.PutUint16(b[12:14], r.Depth)
	binary.LittleEndian.PutUint16(b[14:16], r.Flags)
	return append(dst, b[:]...)
}

// DecodeRec decodes one record from b, which must hold at least RecSize
// bytes.
func DecodeRec(b []byte) Rec {
	return Rec{
		T:     binary.LittleEndian.Uint64(b[0:8]),
		CPID:  binary.LittleEndian.Uint32(b[8:12]),
		Depth: binary.LittleEndian.Uint16(b[12:14]),
		Flags: binary.LittleEndian.Uint16(b[14:16]),
	}
}

// SpillStore absorbs encoded trace records as the capture buffer fills, so
// the recorder's peak memory stays at the buffer size regardless of how
// many events the run emits. Writes arrive in whole-record multiples.
type SpillStore interface {
	io.Writer
	// Reader returns a reader positioned at the first spilled byte. The
	// store must not be written after Reader is called.
	Reader() (io.Reader, error)
	// Close releases the store's backing resources.
	Close() error
}

// MemSpill keeps spilled records in memory: the zero value is ready to
// use. It trades the bounded-memory guarantee for zero setup, which is
// what in-process tests and single-rank runs want.
type MemSpill struct {
	buf bytes.Buffer
}

func (m *MemSpill) Write(p []byte) (int, error) { return m.buf.Write(p) }
func (m *MemSpill) Reader() (io.Reader, error)  { return bytes.NewReader(m.buf.Bytes()), nil }
func (m *MemSpill) Close() error                { m.buf.Reset(); return nil }

// FileSpill spills records to an unlinked temporary file, keeping capture
// memory bounded by the recorder's buffer even for multi-million-event
// runs.
type FileSpill struct {
	f *os.File
}

// NewFileSpill creates a spill file in dir (the default temp dir when dir
// is empty). The file is removed as soon as it is open, so a crashed run
// leaks no spill files.
func NewFileSpill(dir string) (*FileSpill, error) {
	f, err := os.CreateTemp(dir, "trace-spill-*.bin")
	if err != nil {
		return nil, err
	}
	// Unlink immediately: the open descriptor keeps the data alive.
	if err := os.Remove(f.Name()); err != nil {
		f.Close()
		return nil, err
	}
	return &FileSpill{f: f}, nil
}

func (fs *FileSpill) Write(p []byte) (int, error) { return fs.f.Write(p) }

func (fs *FileSpill) Reader() (io.Reader, error) {
	if _, err := fs.f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return fs.f, nil
}

func (fs *FileSpill) Close() error { return fs.f.Close() }

// Recorder buffers trace events for one rank and spills their fixed-width
// encoding to a SpillStore when the buffer fills. Timestamps must be
// nondecreasing — the virtual clock is monotonic per rank — which is what
// lets the pyramid builder run in a single streaming pass later.
type Recorder struct {
	spill SpillStore
	buf   []byte // encoded records, cap = flush threshold
	count uint64
	lastT uint64
}

// DefaultBufRecords is the capture buffer size, in records, used when the
// caller passes 0: 4096 records = 64 KiB per rank.
const DefaultBufRecords = 4096

// NewRecorder wraps spill with a buffer of bufRecords records (0 means
// DefaultBufRecords).
func NewRecorder(spill SpillStore, bufRecords int) *Recorder {
	if bufRecords <= 0 {
		bufRecords = DefaultBufRecords
	}
	return &Recorder{spill: spill, buf: make([]byte, 0, bufRecords*RecSize)}
}

// Emit records one event. Events must arrive in nondecreasing time order.
// This is the capture hot path — once per sample — so on little-endian
// hosts the record is stored into the buffer in place (Rec mirrors the
// on-disk layout; the buffer base is allocator-aligned and grows in whole
// records, keeping every record slot aligned).
func (r *Recorder) Emit(rec Rec) error {
	if rec.T < r.lastT {
		return fmt.Errorf("trace: event time %d precedes previous event %d", rec.T, r.lastT)
	}
	n := len(r.buf)
	if n == cap(r.buf) {
		if err := r.flush(); err != nil {
			return err
		}
		n = 0
	}
	if hostLittleEndian {
		r.buf = r.buf[:n+RecSize]
		*(*Rec)(unsafe.Pointer(&r.buf[n])) = rec
	} else {
		r.buf = AppendRec(r.buf, rec)
	}
	r.count++
	r.lastT = rec.T
	return nil
}

func (r *Recorder) flush() error {
	if len(r.buf) == 0 {
		return nil
	}
	if _, err := r.spill.Write(r.buf); err != nil {
		return err
	}
	r.buf = r.buf[:0]
	return nil
}

// Count reports the number of events emitted so far.
func (r *Recorder) Count() uint64 { return r.count }

// LastT reports the timestamp of the most recent event (0 when empty).
func (r *Recorder) LastT() uint64 { return r.lastT }

// Scan flushes the buffer and replays every recorded event in order. It
// may be called more than once for stores whose Reader restarts (both
// provided stores do).
func (r *Recorder) Scan(fn func(Rec) error) error {
	if err := r.flush(); err != nil {
		return err
	}
	src, err := r.spill.Reader()
	if err != nil {
		return err
	}
	var chunk [RecSize * 512]byte
	left := r.count * RecSize
	for left > 0 {
		c := left
		if c > uint64(len(chunk)) {
			c = uint64(len(chunk))
		}
		b := chunk[:c]
		if _, err := io.ReadFull(src, b); err != nil {
			return fmt.Errorf("trace: spill store lost data: %w", err)
		}
		for o := 0; o < len(b); o += RecSize {
			if err := fn(DecodeRec(b[o : o+RecSize])); err != nil {
				return err
			}
		}
		left -= c
	}
	return nil
}

// Close releases the spill store.
func (r *Recorder) Close() error { return r.spill.Close() }
