package trace

import (
	"testing"
)

// memSource is an in-memory Source for kernel tests.
type memSource struct {
	metas  map[int]Meta
	levels map[int][][]Bucket
}

func newMemSource() *memSource {
	return &memSource{metas: map[int]Meta{}, levels: map[int][][]Bucket{}}
}

func (s *memSource) add(t *testing.T, rank int, recs []Rec) {
	t.Helper()
	meta, levels := buildFromRecs(t, rank, recs)
	s.metas[rank] = meta
	s.levels[rank] = levels
}

func (s *memSource) TraceRanks() []int {
	var out []int
	for r := 0; r < 1<<20; r++ {
		if _, ok := s.metas[r]; ok {
			out = append(out, r)
		}
		if len(out) == len(s.metas) {
			break
		}
	}
	return out
}

func (s *memSource) TraceMeta(rank int) (Meta, bool) { m, ok := s.metas[rank]; return m, ok }

func (s *memSource) TraceLevel(rank, level int) []Bucket {
	lv := s.levels[rank]
	if level < 0 || level >= len(lv) {
		return nil
	}
	return lv[level]
}

// phased emits a three-phase trace: calls path 1 (depth 2) for the first
// third of time, path 2 (depth 5) for the middle, path 3 (depth 1) last.
func phased(n int, span uint64) []Rec {
	recs := make([]Rec, n)
	for i := range recs {
		t := uint64(i) * span / uint64(n)
		switch {
		case t < span/3:
			recs[i] = Rec{T: t, CPID: 1, Depth: 2}
		case t < 2*span/3:
			recs[i] = Rec{T: t, CPID: 2, Depth: 5}
		default:
			recs[i] = Rec{T: t, CPID: 3, Depth: 1}
		}
	}
	return recs
}

func TestViewPhases(t *testing.T) {
	src := newMemSource()
	const span = 3_000_000
	src.add(t, 0, phased(100_000, span))
	g, err := View(src, 0, span, nil, 90, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.W != 90 || g.H != 1 || g.Ranks[0] != 0 {
		t.Fatalf("grid %dx%d ranks %v", g.W, g.H, g.Ranks)
	}
	// Away from phase boundaries every cell must show the phase's path.
	check := func(x int, want uint32) {
		c := g.At(x, 0)
		if c.CPID != want {
			t.Errorf("cell %d: cpid %d, want %d", x, c.CPID, want)
		}
	}
	check(5, 1)
	check(45, 2)
	check(85, 3)
	// The deep middle phase must win any cell that straddles its edge.
	for x := 0; x < 90; x++ {
		c := g.At(x, 0)
		if c.CPID == EmptyCPID {
			t.Errorf("cell %d empty", x)
		}
	}
}

func TestViewZoomConsistency(t *testing.T) {
	src := newMemSource()
	const span = 1 << 20
	src.add(t, 0, phased(50_000, span))
	// Zooming into the middle phase must show only path 2 at every zoom.
	// Windows stay inside the middle phase [span/3, 2·span/3).
	for _, win := range []uint64{span / 4, span / 8, span / 64, 1024, 64} {
		mid := uint64(span / 2)
		g, err := View(src, mid-win/2, mid+win/2, nil, 64, 1)
		if err != nil {
			t.Fatal(err)
		}
		for x := 0; x < 64; x++ {
			if c := g.At(x, 0); c.CPID != 2 && c.CPID != EmptyCPID {
				t.Fatalf("window %d cell %d: cpid %d", win, x, c.CPID)
			}
		}
	}
}

func TestViewRankSampling(t *testing.T) {
	src := newMemSource()
	for r := 0; r < 16; r++ {
		src.add(t, r, []Rec{{T: 0, CPID: uint32(r + 1), Depth: 1}, {T: 999, CPID: uint32(r + 1), Depth: 1}})
	}
	g, err := View(src, 0, 1000, nil, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.H != 4 {
		t.Fatalf("H %d", g.H)
	}
	wantRanks := []int{0, 4, 8, 12}
	for y, want := range wantRanks {
		if g.Ranks[y] != want {
			t.Fatalf("row %d rank %d, want %d", y, g.Ranks[y], want)
		}
		if c := g.At(0, y); c.CPID != uint32(want+1) {
			t.Fatalf("row %d cpid %d, want %d", y, c.CPID, want+1)
		}
	}
	// H larger than the rank count collapses to one row per rank.
	g, err = View(src, 0, 1000, []int{3, 5}, 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if g.H != 2 || g.Ranks[0] != 3 || g.Ranks[1] != 5 {
		t.Fatalf("H %d ranks %v", g.H, g.Ranks)
	}
}

func TestViewEmptyAndErrors(t *testing.T) {
	src := newMemSource()
	src.add(t, 0, phased(100, 1000))
	if _, err := View(src, 0, 100, nil, 0, 1); err == nil {
		t.Error("W=0 accepted")
	}
	if _, err := View(src, 50, 50, nil, 8, 1); err == nil {
		t.Error("empty window accepted")
	}
	if _, err := View(src, 0, 100, []int{99}, 8, 1); err == nil {
		t.Error("unknown rank accepted")
	}
	if _, err := View(src, 0, 0, nil, 1<<23, 1); err == nil {
		t.Error("pixel budget exceeded accepted")
	}
	// A window wholly past the data renders empty cells, not an error.
	g, err := View(src, 1<<40, 1<<41, nil, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 8; x++ {
		if !g.At(x, 0).Empty() {
			t.Fatalf("cell %d not empty", x)
		}
	}
	// t1=0 means through the last event.
	g, err = View(src, 0, 0, nil, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.T1 == 0 {
		t.Fatal("t1 not resolved")
	}
}

// TestViewWorkIsPixelBound counts bucket merges per render via an
// instrumented source: the count must stay O(W·H) as events grow 100×.
type countingSource struct {
	*memSource
	touched int
}

func (s *countingSource) TraceLevel(rank, level int) []Bucket {
	lv := s.memSource.TraceLevel(rank, level)
	s.touched += len(lv)
	return lv
}

func TestViewLevelChoiceIsPixelBound(t *testing.T) {
	// At a fixed 256-cell budget, the chosen level's bucket count must
	// stay within a small constant of W no matter how many events were
	// recorded.
	for _, n := range []int{1_000, 100_000, 1_000_000} {
		src := newMemSource()
		src.add(t, 0, phased(n, uint64(n)*37))
		cs := &countingSource{memSource: src}
		if _, err := View(cs, 0, 0, nil, 256, 1); err != nil {
			t.Fatal(err)
		}
		if cs.touched > 4*256 {
			t.Errorf("n=%d: level of %d buckets chosen for 256 cells", n, cs.touched)
		}
	}
}

func TestViewDeterministic(t *testing.T) {
	src := newMemSource()
	for r := 0; r < 4; r++ {
		src.add(t, r, randRecs(10_000, uint64(r)+1))
	}
	a, err := View(src, 100, 1_000_000, nil, 128, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := View(src, 100, 1_000_000, nil, 128, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Fatalf("cell %d differs", i)
		}
	}
}
