package trace

import (
	"unsafe"
)

// Zero-copy views over mapped trace and pyramid sections. Rec and Bucket
// mirror their little-endian on-disk layouts field for field, so on a
// little-endian host an aligned section payload can be reinterpreted in
// place; other hosts fall back to a decoding copy. This is the trace twin
// of expdb's float64 column views.

// hostLittleEndian reports whether the running host stores multi-byte
// integers little-endian, matching the on-disk encoding.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// RecsFromBytes views b (a whole trace section payload, length a multiple
// of RecSize) as records, zero-copy when the host layout matches.
func RecsFromBytes(b []byte) []Rec {
	n := len(b) / RecSize
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(Rec{}) == 0 {
		return unsafe.Slice((*Rec)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]Rec, n)
	for i := range out {
		out[i] = DecodeRec(b[i*RecSize:])
	}
	return out
}

// BucketsFromBytes views b (a pyramid level payload, length a multiple of
// BucketSize) as buckets, zero-copy when the host layout matches.
func BucketsFromBytes(b []byte) []Bucket {
	n := len(b) / BucketSize
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(Bucket{}) == 0 {
		return unsafe.Slice((*Bucket)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]Bucket, n)
	for i := range out {
		out[i] = DecodeBucket(b[i*BucketSize:])
	}
	return out
}

// Compile-time checks that the structs really mirror the on-disk layout.
var (
	_ [RecSize]byte    = [unsafe.Sizeof(Rec{})]byte{}
	_ [BucketSize]byte = [unsafe.Sizeof(Bucket{})]byte{}
)
