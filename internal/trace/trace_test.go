package trace

import (
	"bytes"
	"testing"
)

func TestRecRoundTrip(t *testing.T) {
	recs := []Rec{
		{},
		{T: 1, CPID: 2, Depth: 3},
		{T: 1<<63 + 7, CPID: ^uint32(0) - 1, Depth: 65535, Flags: 0},
	}
	var b []byte
	for _, r := range recs {
		b = AppendRec(b, r)
	}
	if len(b) != len(recs)*RecSize {
		t.Fatalf("encoded %d bytes, want %d", len(b), len(recs)*RecSize)
	}
	for i, want := range recs {
		if got := DecodeRec(b[i*RecSize:]); got != want {
			t.Errorf("rec %d: got %+v want %+v", i, got, want)
		}
	}
}

func TestBucketRoundTrip(t *testing.T) {
	bks := []Bucket{
		{CPID: EmptyCPID},
		{CPID: 7, Depth: 4, Samples: 9},
		{CPID: 0, Depth: 65535, Samples: 65535},
	}
	var b []byte
	for _, k := range bks {
		b = AppendBucket(b, k)
	}
	for i, want := range bks {
		if got := DecodeBucket(b[i*BucketSize:]); got != want {
			t.Errorf("bucket %d: got %+v want %+v", i, got, want)
		}
	}
}

// spills builds both store kinds for a subtest sweep.
func spills(t *testing.T) map[string]SpillStore {
	t.Helper()
	fs, err := NewFileSpill(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]SpillStore{"mem": &MemSpill{}, "file": fs}
}

func TestRecorderSpillAndScan(t *testing.T) {
	for name, spill := range spills(t) {
		t.Run(name, func(t *testing.T) {
			// Buffer of 8 records forces many spills for 1000 events.
			r := NewRecorder(spill, 8)
			defer r.Close()
			const n = 1000
			for i := 0; i < n; i++ {
				if err := r.Emit(Rec{T: uint64(i * 3), CPID: uint32(i % 17), Depth: uint16(i % 5)}); err != nil {
					t.Fatal(err)
				}
			}
			if r.Count() != n {
				t.Fatalf("count %d, want %d", r.Count(), n)
			}
			if r.LastT() != (n-1)*3 {
				t.Fatalf("lastT %d, want %d", r.LastT(), (n-1)*3)
			}
			for pass := 0; pass < 2; pass++ { // Scan must be repeatable
				i := 0
				if err := r.Scan(func(rec Rec) error {
					want := Rec{T: uint64(i * 3), CPID: uint32(i % 17), Depth: uint16(i % 5)}
					if rec != want {
						t.Fatalf("pass %d rec %d: got %+v want %+v", pass, i, rec, want)
					}
					i++
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				if i != n {
					t.Fatalf("pass %d scanned %d records, want %d", pass, i, n)
				}
			}
		})
	}
}

func TestRecorderRejectsTimeRegression(t *testing.T) {
	r := NewRecorder(&MemSpill{}, 0)
	if err := r.Emit(Rec{T: 10}); err != nil {
		t.Fatal(err)
	}
	if err := r.Emit(Rec{T: 10}); err != nil {
		t.Fatalf("equal timestamps must be accepted: %v", err)
	}
	if err := r.Emit(Rec{T: 9}); err == nil {
		t.Fatal("time regression accepted")
	}
}

func TestByteViewsMatchDecode(t *testing.T) {
	var rb []byte
	var want []Rec
	for i := 0; i < 37; i++ {
		r := Rec{T: uint64(i) * 1001, CPID: uint32(i), Depth: uint16(i % 7)}
		rb = AppendRec(rb, r)
		want = append(want, r)
	}
	got := RecsFromBytes(rb)
	if len(got) != len(want) {
		t.Fatalf("len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rec %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	var bb []byte
	var wantB []Bucket
	for i := 0; i < 19; i++ {
		b := Bucket{CPID: uint32(i * 3), Depth: uint16(i), Samples: uint16(i * 2)}
		bb = AppendBucket(bb, b)
		wantB = append(wantB, b)
	}
	gotB := BucketsFromBytes(bb)
	for i := range wantB {
		if gotB[i] != wantB[i] {
			t.Fatalf("bucket %d: got %+v want %+v", i, gotB[i], wantB[i])
		}
	}
	// Unaligned input must take the copy path and still decode.
	un := append(make([]byte, 1, 1+len(rb)), rb...)[1:]
	if &un[0] == &rb[0] {
		t.Skip("allocator aligned the copy identically")
	}
	got2 := RecsFromBytes(un)
	for i := range want {
		if got2[i] != want[i] {
			t.Fatalf("unaligned rec %d: got %+v want %+v", i, got2[i], want[i])
		}
	}
}

func TestFileSpillUnlinked(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileSpill(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if _, err := fs.Write(bytes.Repeat([]byte{7}, RecSize)); err != nil {
		t.Fatal(err)
	}
	rd, err := fs.Reader()
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, RecSize)
	if _, err := rd.Read(b); err != nil {
		t.Fatal(err)
	}
}
