package trace

import (
	"fmt"
	"math/bits"
	"sort"
)

// Source hands the view kernel one experiment's pyramids. Implementations
// (the mapped database, in-memory tests) expose each rank's levels as
// plain bucket slices — for a mapped file those are zero-copy views of the
// pyramid sections.
type Source interface {
	// TraceRanks lists the ranks with trace data, ascending.
	TraceRanks() []int
	// TraceMeta returns the rank's geometry; ok is false for ranks
	// without trace data (never in TraceRanks, or dropped after damage).
	TraceMeta(rank int) (Meta, bool)
	// TraceLevel returns pyramid level l (0 = finest) for the rank, or
	// nil when unavailable.
	TraceLevel(rank, level int) []Bucket
}

// Cell is one rendered pixel of the time×rank grid.
type Cell struct {
	CPID    uint32 // EmptyCPID when no samples land in the cell
	Depth   uint16
	Samples uint16 // saturating
}

// Grid is the result of a View call: H rank rows × W time columns of
// representative call paths, row-major.
type Grid struct {
	T0, T1 uint64
	W, H   int
	Ranks  []int // the rank rendered by each row, len H
	Cells  []Cell
}

// At returns the cell at time column x, rank row y.
func (g *Grid) At(x, y int) Cell { return g.Cells[y*g.W+x] }

// Empty reports whether no samples landed in the cell.
func (c Cell) Empty() bool { return c.CPID == EmptyCPID }

// MaxViewPixels bounds a single render request; the limit exists so a
// hostile HTTP query cannot ask for a multi-gigabyte grid.
const MaxViewPixels = 1 << 22

// View renders the time window [t0, t1) across ranks into a W×H grid in
// O(W·H) time, independent of how many events were recorded:
//
//   - Each rank row picks the coarsest pyramid level whose bucket width
//     still resolves one cell, so a cell merges O(1) buckets; across a
//     row the merged buckets total ≤ level size + 2W, which the level
//     choice keeps at O(W).
//   - When the window out-zooms the base resolution, cells sample-and-hold
//     the finest bucket at the cell midpoint — still O(1) per cell.
//   - When H < len(ranks), rows subsample the rank list; when H ≥
//     len(ranks) the grid shrinks to one row per rank (no upsampling).
//
// ranks nil means all ranks in the source. t1 must exceed t0; a zero t1
// means "through the latest event of the selected ranks".
func View(src Source, t0, t1 uint64, ranks []int, W, H int) (*Grid, error) {
	if W <= 0 {
		return nil, fmt.Errorf("trace: view width %d", W)
	}
	if ranks == nil {
		ranks = src.TraceRanks()
	} else {
		ranks = append([]int(nil), ranks...)
		sort.Ints(ranks)
	}
	keep := ranks[:0]
	for _, r := range ranks {
		if _, ok := src.TraceMeta(r); ok {
			keep = append(keep, r)
		}
	}
	ranks = keep
	if len(ranks) == 0 {
		return nil, fmt.Errorf("trace: no ranks with trace data")
	}
	if t1 == 0 {
		for _, r := range ranks {
			if m, ok := src.TraceMeta(r); ok && m.LastT+1 > t1 {
				t1 = m.LastT + 1
			}
		}
	}
	if t1 <= t0 {
		return nil, fmt.Errorf("trace: empty time window [%d, %d)", t0, t1)
	}
	if H <= 0 || H > len(ranks) {
		H = len(ranks)
	}
	if W*H > MaxViewPixels {
		return nil, fmt.Errorf("trace: view %d×%d exceeds pixel budget %d", W, H, MaxViewPixels)
	}
	g := &Grid{T0: t0, T1: t1, W: W, H: H, Ranks: make([]int, H), Cells: make([]Cell, W*H)}
	span := t1 - t0
	for y := 0; y < H; y++ {
		rank := ranks[y*len(ranks)/H]
		g.Ranks[y] = rank
		meta, _ := src.TraceMeta(rank)
		renderRow(src, meta, t0, span, g.Cells[y*W:(y+1)*W])
	}
	return g, nil
}

// renderRow fills one rank's W cells.
func renderRow(src Source, meta Meta, t0, span uint64, row []Cell) {
	W := uint64(len(row))
	for i := range row {
		row[i].CPID = EmptyCPID
	}
	if meta.NBuckets == 0 {
		return
	}
	cellW := span / W // floor; per-cell bounds are computed exactly below
	if cellW == 0 {
		cellW = 1
	}
	// Coarsest level whose buckets still resolve one cell: width(l) =
	// Width<<l ≤ cellW. Clamped to the levels that exist.
	level := 0
	if cellW > meta.Width {
		level = bits.Len64(cellW/meta.Width) - 1
	}
	if max := meta.Levels() - 1; level > max {
		level = max
	}
	buckets := src.TraceLevel(meta.Rank, level)
	if buckets == nil {
		return
	}
	bw := meta.Width << uint(level)
	for i := uint64(0); i < W; i++ {
		// Exact cell bounds via 128-bit products: lo = t0 + i·span/W.
		lo := t0 + mulDiv(i, span, W)
		hi := t0 + mulDiv(i+1, span, W)
		if hi <= lo {
			hi = lo + 1
		}
		var c Cell
		if cellW < meta.Width {
			// Below base resolution: sample-and-hold the finest bucket
			// at the cell midpoint, so zooming past the data repeats it
			// instead of fabricating detail.
			mid := lo + (hi-lo)/2
			b := mid / bw
			c.CPID = EmptyCPID
			if b < uint64(len(buckets)) && !buckets[b].Empty() {
				c = Cell(buckets[b])
			}
		} else {
			c = mergeSpan(buckets, lo, hi, bw)
		}
		row[i] = c
	}
}

// mergeSpan folds the buckets overlapping [lo, hi) into one cell. The
// caller's level choice bounds the bucket count per cell at O(1) amortized
// across the row.
func mergeSpan(buckets []Bucket, lo, hi, bw uint64) Cell {
	c := Cell{CPID: EmptyCPID}
	b0 := lo / bw
	b1 := (hi - 1) / bw
	if b0 >= uint64(len(buckets)) {
		return c
	}
	if b1 >= uint64(len(buckets)) {
		b1 = uint64(len(buckets)) - 1
	}
	acc := Bucket{CPID: EmptyCPID}
	for b := b0; b <= b1; b++ {
		acc = MergeBucket(acc, buckets[b])
	}
	if acc.Empty() {
		return c
	}
	return Cell(acc)
}

// mulDiv computes a·b/c without overflow for any a·b up to 2^128.
func mulDiv(a, b, c uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	q, _ := bits.Div64(hi, lo, c)
	return q
}
