package ingest

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"strings"
	"testing"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{io.ErrUnexpectedEOF, ClassTruncated},
		{fmt.Errorf("reading x: %w", io.ErrUnexpectedEOF), ClassTruncated},
		{io.EOF, ClassTruncated},
		{&fs.PathError{Op: "open", Path: "x", Err: fs.ErrNotExist}, ClassUnreadable},
		{fs.ErrPermission, ClassUnreadable},
		{&PanicError{Value: "boom"}, ClassInternal},
		{fmt.Errorf("wrap: %w", &PanicError{Value: 1}), ClassInternal},
		{errors.New("bad magic"), ClassCorrupt},
		{nil, ClassCorrupt},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestClassNamesRoundTrip(t *testing.T) {
	for _, c := range []Class{ClassCorrupt, ClassTruncated, ClassUnreadable, ClassInternal} {
		got, err := ClassFromName(c.String())
		if err != nil || got != c {
			t.Errorf("ClassFromName(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ClassFromName("martian"); err == nil {
		t.Error("unknown class name accepted")
	}
}

func TestReportSummaryAndSort(t *testing.T) {
	r := &Report{Attempted: 1024, Merged: 1021}
	r.Quarantine(BadRank{Path: "z.cpprof", Rank: 9, Offset: 4, Class: ClassTruncated, Message: "eof"})
	r.Quarantine(BadRank{Path: "a.cpprof", Rank: -1, Offset: -1, Class: ClassCorrupt, Message: "bad magic"})
	r.Quarantine(BadRank{Path: "m.cpprof", Rank: 3, Offset: 10, Class: ClassTruncated, Message: "eof"})
	if r.Clean() {
		t.Fatal("Clean with quarantined files")
	}
	r.Sort()
	if r.Bad[0].Path != "a.cpprof" || r.Bad[2].Path != "z.cpprof" {
		t.Fatalf("sort order: %v", r.Bad)
	}
	got := r.Summary()
	want := "merged 1021/1024 ranks (3 quarantined: 1 corrupt, 2 truncated)"
	if got != want {
		t.Fatalf("Summary = %q, want %q", got, want)
	}

	clean := &Report{Attempted: 4, Merged: 4}
	if !clean.Clean() {
		t.Fatal("clean report not Clean")
	}
	if s := clean.Summary(); s != "merged 4/4 ranks" {
		t.Fatalf("clean Summary = %q", s)
	}
}

func TestBadRankString(t *testing.T) {
	b := BadRank{Path: "r7.cpprof", Rank: 7, Offset: 99, Class: ClassCorrupt, Message: "bad node kind"}
	s := b.String()
	for _, want := range []string{"r7.cpprof", "rank 7", "corrupt", "offset 99", "bad node kind"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	unk := BadRank{Path: "x", Rank: -1, Offset: -1, Class: ClassUnreadable, Message: "denied"}
	if !strings.Contains(unk.String(), "rank ?") {
		t.Errorf("unknown rank rendered as %q", unk.String())
	}
}

func TestCountReader(t *testing.T) {
	cr := &CountReader{R: strings.NewReader("0123456789")}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(cr, buf); err != nil {
		t.Fatal(err)
	}
	if cr.N != 4 {
		t.Fatalf("N = %d after 4 bytes", cr.N)
	}
	if _, err := io.Copy(io.Discard, cr); err != nil {
		t.Fatal(err)
	}
	if cr.N != 10 {
		t.Fatalf("N = %d after drain", cr.N)
	}
}

func TestPanicError(t *testing.T) {
	err := error(&PanicError{Value: "kaboom", Stack: []byte("stack")})
	if !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("Error() = %q", err)
	}
	var pe *PanicError
	if !errors.As(fmt.Errorf("merge: %w", err), &pe) {
		t.Fatal("PanicError lost through wrapping")
	}
}
