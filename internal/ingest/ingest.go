// Package ingest tracks what happened while a set of per-rank measurement
// files was merged into one experiment database. At scale some ranks will
// be truncated (killed jobs), corrupted (flaky filesystems) or unreadable
// (permissions, lost blocks); hpcprof's -keep-going mode quarantines those
// files instead of aborting, and the Report records exactly which ranks
// were dropped so the database can carry "merged 1021/1024 ranks" as
// provenance rather than silently presenting partial data as complete.
package ingest

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"sort"
	"strings"
)

// Class buckets ingestion failures by what went wrong, so operators can
// distinguish "the filesystem lost the tail" from "the file is garbage".
type Class uint8

const (
	// ClassCorrupt: the file parsed wrongly — bad magic, failed checksum,
	// implausible counts, validation failure.
	ClassCorrupt Class = iota
	// ClassTruncated: the file ended mid-structure (killed job, partial
	// write).
	ClassTruncated
	// ClassUnreadable: the file could not be opened or read at all.
	ClassUnreadable
	// ClassInternal: processing the file panicked or failed inside the
	// merge pipeline; the file itself may be fine.
	ClassInternal
)

func (c Class) String() string {
	switch c {
	case ClassCorrupt:
		return "corrupt"
	case ClassTruncated:
		return "truncated"
	case ClassUnreadable:
		return "unreadable"
	case ClassInternal:
		return "internal"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// ClassFromName inverts Class.String, for deserializing provenance.
func ClassFromName(s string) (Class, error) {
	for _, c := range []Class{ClassCorrupt, ClassTruncated, ClassUnreadable, ClassInternal} {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("ingest: unknown error class %q", s)
}

// Classify buckets an ingestion error. Unexpected EOFs are truncation
// (including bare io.EOF, which binary readers surface when a count
// promises more data than the file holds); filesystem errors are
// unreadable; panics are internal; everything else is corruption.
func Classify(err error) Class {
	if err == nil {
		return ClassCorrupt
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return ClassInternal
	}
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return ClassTruncated
	}
	var pathErr *fs.PathError
	if errors.As(err, &pathErr) || errors.Is(err, fs.ErrNotExist) || errors.Is(err, fs.ErrPermission) {
		return ClassUnreadable
	}
	return ClassCorrupt
}

// PanicError wraps a recovered panic from a merge worker so one poisoned
// shard surfaces as a typed error instead of crashing the process.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic in worker: %v", e.Value)
}

// BadRank records one quarantined measurement file. Fields are plain
// values (the error is flattened to a message) so the record serializes
// into the experiment database's provenance section.
type BadRank struct {
	// Path is the measurement file.
	Path string
	// Rank is the MPI rank, or -1 when the file broke before the rank
	// could be parsed.
	Rank int
	// Offset is the approximate byte offset reached before the failure
	// (read-buffer granularity), or -1 when unknown.
	Offset int64
	// Class buckets the failure.
	Class Class
	// Message is the error text.
	Message string
}

func (b BadRank) String() string {
	rank := "?"
	if b.Rank >= 0 {
		rank = fmt.Sprintf("%d", b.Rank)
	}
	return fmt.Sprintf("%s (rank %s, %s at offset %d): %s", b.Path, rank, b.Class, b.Offset, b.Message)
}

// Report is the structured outcome of a fault-tolerant merge: how many
// files were attempted, how many merged, and exactly which were
// quarantined. The zero value is ready to use.
type Report struct {
	// Attempted is the number of measurement files the merge was given.
	Attempted int
	// Merged is the number successfully folded in.
	Merged int
	// Bad lists the quarantined files, sorted by path.
	Bad []BadRank
}

// Quarantine records one bad file. Concurrent callers must synchronize
// (cmd/hpcprof guards the report with a mutex).
func (r *Report) Quarantine(b BadRank) {
	r.Bad = append(r.Bad, b)
}

// Sort orders the quarantine list by path, making reports deterministic
// regardless of which worker hit which file first.
func (r *Report) Sort() {
	sort.Slice(r.Bad, func(i, j int) bool { return r.Bad[i].Path < r.Bad[j].Path })
}

// Clean reports whether every attempted file merged.
func (r *Report) Clean() bool { return len(r.Bad) == 0 && r.Merged == r.Attempted }

// Summary is the one-line provenance string, e.g.
// "merged 1021/1024 ranks (3 quarantined: 2 truncated, 1 corrupt)".
func (r *Report) Summary() string {
	if r.Clean() {
		return fmt.Sprintf("merged %d/%d ranks", r.Merged, r.Attempted)
	}
	counts := map[Class]int{}
	for _, b := range r.Bad {
		counts[b.Class]++
	}
	var parts []string
	for _, c := range []Class{ClassCorrupt, ClassTruncated, ClassUnreadable, ClassInternal} {
		if counts[c] > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", counts[c], c))
		}
	}
	return fmt.Sprintf("merged %d/%d ranks (%d quarantined: %s)",
		r.Merged, r.Attempted, len(r.Bad), strings.Join(parts, ", "))
}

// CountReader counts bytes read through it, giving quarantine records an
// offset even when the underlying parser buffers ahead.
type CountReader struct {
	R io.Reader
	N int64
}

func (c *CountReader) Read(p []byte) (int, error) {
	n, err := c.R.Read(p)
	c.N += int64(n)
	return n, err
}
