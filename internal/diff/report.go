package diff

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
)

// ReportOptions select what a Report ranks.
type ReportOptions struct {
	// Metric is the compared metric to report (default: the first).
	Metric string
	// Input is the label of the compared input (default: the last).
	Input string
	// Threshold is the minimum |excess| for a scope to appear, as a
	// fraction of the larger total (default 0.01; negative means 0).
	Threshold float64
	// Top bounds each list (default 10; negative means unlimited).
	Top int
}

// ReportEntry is one ranked scope. Values are normalized costs (per-rank
// averages when the diff normalized per rank).
type ReportEntry struct {
	// Path is the scope's call path from the entry point, as labels.
	Path []string `json:"path"`
	// Base and Value are the exclusive costs in the baseline and the
	// compared input.
	Base  float64 `json:"base"`
	Value float64 `json:"value"`
	// Delta is Value − Base; Excess is Value minus the ideal-scaling
	// prediction Base·f (equal to Delta when no scaling mode applies).
	Delta  float64 `json:"delta"`
	Excess float64 `json:"excess"`
	// Ratio is Value/Base (0 when Base is 0).
	Ratio float64 `json:"ratio"`
	// Loss is the scaling-loss fraction (omitted under ModeNone).
	Loss float64 `json:"loss,omitempty"`
	// OnlyIn names the input that has this scope when the other lacks
	// it — the explicit absent marker (empty when both have it).
	OnlyIn string `json:"only_in,omitempty"`
}

// Report ranks where one compared input regressed or improved against the
// baseline.
type Report struct {
	Program   string `json:"program"`
	Metric    string `json:"metric"`
	Unit      string `json:"unit,omitempty"`
	Mode      string `json:"mode"`
	PerRank   bool   `json:"per_rank"`
	BaseLabel string `json:"base_label"`
	Label     string `json:"label"`
	BaseRanks int    `json:"base_ranks"`
	Ranks     int    `json:"ranks"`
	// TotalBase/Total are the root inclusive costs; TotalExcess is the
	// root's cost beyond ideal scaling, TotalLoss its loss fraction.
	TotalBase   float64 `json:"total_base"`
	Total       float64 `json:"total"`
	TotalDelta  float64 `json:"total_delta"`
	TotalExcess float64 `json:"total_excess"`
	TotalLoss   float64 `json:"total_loss,omitempty"`
	// Threshold is the applied cutoff as an absolute cost.
	Threshold    float64       `json:"threshold"`
	Regressions  []ReportEntry `json:"regressions"`
	Improvements []ReportEntry `json:"improvements"`
	// Omitted counts entries above the cutoff dropped by Top.
	OmittedRegressions  int      `json:"omitted_regressions,omitempty"`
	OmittedImprovements int      `json:"omitted_improvements,omitempty"`
	Notes               []string `json:"notes,omitempty"`
}

// Report ranks the union's procedure frames by exclusive excess cost for
// one metric and one compared input.
func (r *Result) Report(opt ReportOptions) (*Report, error) {
	mi := 0
	if opt.Metric != "" {
		mi = -1
		for i := range r.Metrics {
			if r.Metrics[i].Name == opt.Metric {
				mi = i
				break
			}
		}
		if mi < 0 {
			return nil, fmt.Errorf("diff: metric %q was not compared", opt.Metric)
		}
	}
	ii := len(r.Inputs) - 1
	if opt.Input != "" {
		ii = -1
		for i := 1; i < len(r.Inputs); i++ {
			if r.Inputs[i].Label == opt.Input {
				ii = i
				break
			}
		}
		if ii < 1 {
			return nil, fmt.Errorf("diff: no compared input labeled %q", opt.Input)
		}
	}
	mc := &r.Metrics[mi]
	base, in := &r.Inputs[0], &r.Inputs[ii]
	f := in.Factor

	rep := &Report{
		Program:   r.Tree.Program,
		Metric:    mc.Name,
		Unit:      mc.Unit,
		Mode:      r.Mode.String(),
		PerRank:   r.PerRank,
		BaseLabel: base.Label,
		Label:     in.Label,
		BaseRanks: base.Ranks,
		Ranks:     in.Ranks,
		Notes:     r.Exp.Notes,
	}
	root := r.Tree.Root
	rep.TotalBase = root.Incl.Get(mc.In[0])
	rep.Total = root.Incl.Get(mc.In[ii])
	rep.TotalDelta = root.Incl.Get(mc.Delta[ii-1])
	rep.TotalExcess = rep.Total - rep.TotalBase*f
	if mc.Loss != nil {
		rep.TotalLoss = root.Incl.Get(mc.Loss[ii-1])
	}

	scale := rep.Total
	if s := rep.TotalBase * f; s > scale {
		scale = s
	}
	if s := -scale; s > scale {
		scale = s
	}
	th := opt.Threshold
	switch {
	case th == 0:
		th = 0.01
	case th < 0:
		th = 0
	}
	rep.Threshold = th * scale

	var entries []ReportEntry
	core.Walk(root, func(n *core.Node) bool {
		if n.Kind != core.KindFrame {
			return true
		}
		av := n.Excl.Get(mc.In[0])
		bv := n.Excl.Get(mc.In[ii])
		ex := bv - av*f
		if !(ex > rep.Threshold || -ex > rep.Threshold) {
			return true
		}
		e := ReportEntry{Base: av, Value: bv, Delta: n.Excl.Get(mc.Delta[ii-1]),
			Excess: ex, Ratio: n.Excl.Get(mc.Ratio[ii-1])}
		if mc.Loss != nil {
			e.Loss = n.Excl.Get(mc.Loss[ii-1])
		}
		for _, a := range n.Path() {
			e.Path = append(e.Path, a.Label())
		}
		inBase, inOther := r.PresentIn(n, 0), r.PresentIn(n, ii)
		switch {
		case inBase && !inOther:
			e.OnlyIn = base.Label
		case inOther && !inBase:
			e.OnlyIn = in.Label
		}
		entries = append(entries, e)
		return true
	})
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].Excess != entries[j].Excess {
			return entries[i].Excess > entries[j].Excess
		}
		return strings.Join(entries[i].Path, ">") < strings.Join(entries[j].Path, ">")
	})
	top := opt.Top
	if top == 0 {
		top = 10
	}
	for _, e := range entries {
		if e.Excess > 0 {
			rep.Regressions = append(rep.Regressions, e)
		}
	}
	for i := len(entries) - 1; i >= 0; i-- {
		if entries[i].Excess < 0 {
			rep.Improvements = append(rep.Improvements, entries[i])
		}
	}
	if top > 0 {
		if n := len(rep.Regressions); n > top {
			rep.Regressions = rep.Regressions[:top]
			rep.OmittedRegressions = n - top
		}
		if n := len(rep.Improvements); n > top {
			rep.Improvements = rep.Improvements[:top]
			rep.OmittedImprovements = n - top
		}
	}
	return rep, nil
}

// fmtV formats a cost for the text report: compact, never blank.
func fmtV(v float64) string { return fmt.Sprintf("%.4g", v) }

// WriteText renders the report as the hpcdiff CLI prints it.
func (rep *Report) WriteText(w io.Writer) error {
	norm := "total costs"
	if rep.PerRank {
		norm = "per-rank costs"
	}
	fmt.Fprintf(w, "differential profile: %s\n", rep.Program)
	fmt.Fprintf(w, "metric %s", rep.Metric)
	if rep.Unit != "" {
		fmt.Fprintf(w, " (%s)", rep.Unit)
	}
	fmt.Fprintf(w, ", mode %s, %s\n", rep.Mode, norm)
	fmt.Fprintf(w, "inputs: %s (%d ranks) -> %s (%d ranks)\n",
		rep.BaseLabel, rep.BaseRanks, rep.Label, rep.Ranks)
	fmt.Fprintf(w, "totals: %s=%s %s=%s delta=%s excess=%s",
		rep.BaseLabel, fmtV(rep.TotalBase), rep.Label, fmtV(rep.Total),
		fmtV(rep.TotalDelta), fmtV(rep.TotalExcess))
	if rep.Mode != "none" {
		fmt.Fprintf(w, " loss=%s", fmtV(rep.TotalLoss))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "threshold: |excess| > %s\n", fmtV(rep.Threshold))
	for _, n := range rep.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}

	section := func(title string, entries []ReportEntry, omitted int) {
		fmt.Fprintf(w, "\n%s:\n", title)
		if len(entries) == 0 {
			fmt.Fprintln(w, "  (none)")
			return
		}
		for _, e := range entries {
			proc := "?"
			if len(e.Path) > 0 {
				proc = e.Path[len(e.Path)-1]
			}
			fmt.Fprintf(w, "  excess=%-10s %s=%-10s %s=%-10s ratio=%-8s",
				fmtV(e.Excess), rep.BaseLabel, fmtV(e.Base), rep.Label, fmtV(e.Value), fmtV(e.Ratio))
			if rep.Mode != "none" {
				fmt.Fprintf(w, " loss=%-8s", fmtV(e.Loss))
			}
			fmt.Fprintf(w, " %s", proc)
			if e.OnlyIn != "" {
				fmt.Fprintf(w, " [only in %s]", e.OnlyIn)
			}
			fmt.Fprintln(w)
			fmt.Fprintf(w, "      at %s\n", strings.Join(e.Path, " > "))
		}
		if omitted > 0 {
			fmt.Fprintf(w, "  ... and %d more above the threshold\n", omitted)
		}
	}
	section(fmt.Sprintf("regressions (%s costs more than scaled %s)", rep.Label, rep.BaseLabel),
		rep.Regressions, rep.OmittedRegressions)
	section(fmt.Sprintf("improvements (%s costs less than scaled %s)", rep.Label, rep.BaseLabel),
		rep.Improvements, rep.OmittedImprovements)
	return nil
}
