// Package diff implements differential profiling: the structural union of
// two or more experiment databases into one calling context tree whose
// metric store carries, for every compared cost metric, per-input columns
// plus computed delta, ratio and scaling-loss columns — ordinary metric
// columns, so every existing view (top-down, callers, flat), sort, hot
// path and threshold renders a diff with zero view-layer changes.
//
// Scopes are matched structurally by their full core.Key at every level
// (frame symbol + structure scope + disambiguating ID), the same identity
// the canonical CCT fuses samples by. A scope present in only some inputs
// keeps its rows: absence is recorded in explicit per-input presence
// columns ("in[A]" is 1 where input A has the scope), never conflated
// with a zero cost.
//
// The scaling-loss column generalizes Section VI-A's scaled differencing
// (after Coarfa et al.): with expected cost e(s) = a(s)·f — the baseline
// cost scaled by the ideal weak- or strong-scaling factor f — the loss at
// scope s is
//
//	loss(s) = 1 − e(s)/b(s)
//
// the complement of parallel efficiency: for a weak-scaling pair at N and
// N/k ranks (total costs), 1 − k·T_{N/k}/T_N. It is positive where the
// run at scale spends more than ideal scaling predicts, negative where it
// beats the prediction, and 0 where the compared run has no cost.
//
// Determinism: the union is built single-threaded in first-appearance
// order and the column kernels write disjoint slabs, so a diff result —
// including its serialized form — is byte-identical regardless of the
// Jobs setting.
package diff

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/expdb"
	"repro/internal/metric"
)

// MaxInputs bounds how many experiments one diff can union (presence is a
// per-row bitmask).
const MaxInputs = 8

// Mode selects the scaling expectation applied to the baseline.
type Mode uint8

const (
	// ModeAuto picks ModeNone when every input has the same rank count
	// and ModeWeak otherwise.
	ModeAuto Mode = iota
	// ModeNone compares costs directly (no loss columns).
	ModeNone
	// ModeWeak expects per-rank cost to stay constant as ranks grow.
	ModeWeak
	// ModeStrong expects total cost to stay constant as ranks grow.
	ModeStrong
)

func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeNone:
		return "none"
	case ModeWeak:
		return "weak"
	case ModeStrong:
		return "strong"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// ParseMode parses a mode name.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "auto":
		return ModeAuto, nil
	case "none":
		return ModeNone, nil
	case "weak":
		return ModeWeak, nil
	case "strong":
		return ModeStrong, nil
	}
	return ModeAuto, fmt.Errorf("diff: unknown mode %q (want auto, none, weak or strong)", s)
}

// Norm selects how input costs are normalized before comparison.
type Norm uint8

const (
	// NormAuto normalizes to per-rank averages exactly when the inputs
	// have different rank counts.
	NormAuto Norm = iota
	// NormPerRank divides each input's costs by its rank count.
	NormPerRank
	// NormTotal compares rank-summed totals as stored.
	NormTotal
)

// Input is one experiment to diff. The label names the input's columns
// ("CYCLES[base]" for label "base"); it must be addressable by the engine
// command grammar, so it may not contain spaces or commas.
type Input struct {
	Label string
	Exp   *expdb.Experiment
}

// Config controls a diff.
type Config struct {
	// Metrics are the cost columns to compare. Empty means every raw
	// metric of the baseline that every input shares (by name); metrics
	// named explicitly must be raw columns of every input.
	Metrics []string
	// Mode selects the scaling expectation (default ModeAuto).
	Mode Mode
	// Norm selects the cost normalization (default NormAuto).
	Norm Norm
	// Jobs bounds kernel parallelism when (re)computing the derived
	// columns (<=1 serial). The result does not depend on it.
	Jobs int
}

// InputInfo describes one input's place in the union.
type InputInfo struct {
	// Label is the input's column label.
	Label string
	// Ranks is the input's merged rank count (at least 1).
	Ranks int
	// Norm is the factor applied to the input's stored costs (1, or
	// 1/Ranks under per-rank normalization).
	Norm float64
	// Factor is the ideal-scaling multiplier applied to the baseline's
	// normalized cost to predict this input's (1 for the baseline).
	Factor float64
	// PresenceCol is the column holding 1 at scopes this input has.
	PresenceCol int
}

// MetricCols maps one compared metric to its columns in the union
// registry. Delta/Ratio/Loss are indexed by input minus one (entry 0
// compares input 1 against the baseline input 0); Loss is nil under
// ModeNone.
type MetricCols struct {
	// Name is the source metric name, e.g. "CYCLES".
	Name string
	// Unit is the source metric unit.
	Unit string
	// In holds the per-input cost columns, e.g. CYCLES[A], CYCLES[B].
	In []int
	// Delta holds b−a difference columns, e.g. CYCLES[B-A].
	Delta []int
	// Ratio holds b/a ratio columns, e.g. CYCLES[B/A].
	Ratio []int
	// Loss holds scaling-loss columns 1 − a·f/b, e.g. CYCLES[loss(B)].
	Loss []int
}

// kernelTask recomputes one comparison column set (delta, ratio, loss of
// one metric against one input) on one plane. Tasks touch disjoint output
// slabs, so any subset may run concurrently.
type kernelTask struct {
	plane metric.Plane
	mi    int // index into Result.Metrics
	ii    int // compared input (>= 1)
}

// Result is a completed diff: a fresh experiment whose tree is the
// structural union of the inputs, plus the column map.
type Result struct {
	// Exp wraps the union tree as an experiment (serializable with
	// WriteBinary/WriteXML like any other database).
	Exp *expdb.Experiment
	// Tree is the union calling context tree.
	Tree *core.Tree
	// Inputs describes the inputs in argument order.
	Inputs []InputInfo
	// Metrics maps each compared metric to its columns.
	Metrics []MetricCols
	// Mode is the resolved scaling expectation (never ModeAuto).
	Mode Mode
	// PerRank reports whether costs were normalized to per-rank averages.
	PerRank bool

	// present is the per-row input bitmask backing the presence columns.
	present []uint8
	tasks   []kernelTask
	jobs    int
}

// labelOK reports whether a label survives the engine command grammar:
// command lines split on whitespace and column lists split on commas.
func labelOK(l string) bool {
	return l != "" && !strings.ContainsAny(l, " \t,")
}

// defaultLabels are the labels used when an input does not name itself.
var defaultLabels = [MaxInputs]string{"A", "B", "C", "D", "E", "F", "G", "H"}

// Diff unions the inputs into a fresh experiment. The first input is the
// baseline every other input is compared against. Input trees are only
// read; they may be shared with live sessions provided all their lazy
// columns have been faulted in (engine.Snapshot.FaultAll).
func Diff(cfg Config, inputs ...Input) (*Result, error) {
	if len(inputs) < 2 {
		return nil, fmt.Errorf("diff: need at least 2 inputs, got %d", len(inputs))
	}
	if len(inputs) > MaxInputs {
		return nil, fmt.Errorf("diff: at most %d inputs, got %d", MaxInputs, len(inputs))
	}
	labels := make([]string, len(inputs))
	seen := map[string]bool{}
	for i, in := range inputs {
		if in.Exp == nil || in.Exp.Tree == nil {
			return nil, fmt.Errorf("diff: input %d has no tree", i)
		}
		l := in.Label
		if l == "" {
			l = defaultLabels[i]
		}
		if !labelOK(l) {
			return nil, fmt.Errorf("diff: label %q contains a space or comma", l)
		}
		if seen[l] {
			return nil, fmt.Errorf("diff: duplicate label %q", l)
		}
		seen[l] = true
		labels[i] = l
	}

	ranks := make([]int, len(inputs))
	sameRanks := true
	for i, in := range inputs {
		ranks[i] = in.Exp.NRanks
		if ranks[i] < 1 {
			ranks[i] = 1
		}
		if ranks[i] != ranks[0] {
			sameRanks = false
		}
	}
	mode := cfg.Mode
	if mode == ModeAuto {
		if sameRanks {
			mode = ModeNone
		} else {
			mode = ModeWeak
		}
	}
	perRank := false
	switch cfg.Norm {
	case NormAuto:
		perRank = !sameRanks
	case NormPerRank:
		perRank = true
	}

	var notes []string
	metrics, mnotes, err := resolveMetrics(cfg.Metrics, inputs, labels)
	if err != nil {
		return nil, err
	}
	notes = append(notes, mnotes...)

	// Build the union registry: for each metric, the per-input cost
	// columns first (they carry base values, so they stay below the
	// recomputation boundary), then the computed comparison columns;
	// the presence columns last.
	reg := metric.NewRegistry()
	r := &Result{Mode: mode, PerRank: perRank, jobs: cfg.Jobs}
	for i := range inputs {
		info := InputInfo{Label: labels[i], Ranks: ranks[i], Norm: 1, Factor: 1}
		if perRank {
			info.Norm = 1 / float64(ranks[i])
		}
		switch mode {
		case ModeWeak:
			if !perRank {
				info.Factor = float64(ranks[i]) / float64(ranks[0])
			}
		case ModeStrong:
			if perRank {
				info.Factor = float64(ranks[0]) / float64(ranks[i])
			}
		}
		r.Inputs = append(r.Inputs, info)
	}
	for _, rm := range metrics {
		mc := MetricCols{Name: rm.name, Unit: rm.unit}
		for i := range inputs {
			d, err := reg.AddRaw(fmt.Sprintf("%s[%s]", rm.name, labels[i]), rm.unit, rm.period)
			if err != nil {
				return nil, err
			}
			mc.In = append(mc.In, d.ID)
		}
		for i := 1; i < len(inputs); i++ {
			d, err := reg.AddComputed(fmt.Sprintf("%s[%s-%s]", rm.name, labels[i], labels[0]), rm.unit)
			if err != nil {
				return nil, err
			}
			mc.Delta = append(mc.Delta, d.ID)
			q, err := reg.AddComputed(fmt.Sprintf("%s[%s/%s]", rm.name, labels[i], labels[0]), "x")
			if err != nil {
				return nil, err
			}
			mc.Ratio = append(mc.Ratio, q.ID)
			if mode != ModeNone {
				ls, err := reg.AddComputed(fmt.Sprintf("%s[loss(%s)]", rm.name, labels[i]), "frac")
				if err != nil {
					return nil, err
				}
				mc.Loss = append(mc.Loss, ls.ID)
			}
		}
		r.Metrics = append(r.Metrics, mc)
	}
	for i := range r.Inputs {
		d, err := reg.AddComputed(fmt.Sprintf("in[%s]", labels[i]), "")
		if err != nil {
			return nil, err
		}
		r.Inputs[i].PresenceCol = d.ID
	}

	// Union the trees. Scopes match on the full key; children keep
	// first-appearance order across the inputs, so the union of
	// identically shaped trees has the inputs' own child order.
	out := core.NewTree(diffProgram(inputs), reg)
	srcCols := make([][]int, len(inputs)) // per input, source column per metric
	for i, in := range inputs {
		srcCols[i] = make([]int, len(metrics))
		for mi, rm := range metrics {
			srcCols[i][mi] = in.Exp.Tree.Reg.ByName(rm.name).ID
		}
	}
	roots := make([]*core.Node, len(inputs))
	for i, in := range inputs {
		roots[i] = in.Exp.Tree.Root
	}
	b := unionBuilder{r: r, metrics: r.Metrics, srcCols: srcCols}
	b.setPresent(out.Root, allBits(len(inputs)))
	b.union(out.Root, roots)

	out.ComputeMetrics()
	r.Tree = out
	r.buildTasks()
	r.Recompute()

	// Provenance: a diff of a quarantined (-keep-going) database must say
	// so — the comparison silently covers only the merged ranks otherwise.
	for i, in := range inputs {
		if rep := in.Exp.Provenance; rep != nil && !rep.Clean() {
			notes = append(notes, fmt.Sprintf(
				"diff: input %s is quarantined (%s); its costs cover the %d merged ranks only",
				labels[i], rep.Summary(), r.Inputs[i].Ranks))
		}
		for _, n := range in.Exp.Notes {
			notes = append(notes, fmt.Sprintf("diff: input %s: %s", labels[i], n))
		}
	}

	nranks := 1
	if !perRank && sameRanks {
		nranks = ranks[0]
	}
	r.Exp = &expdb.Experiment{Program: out.Program, NRanks: nranks, Tree: out, Notes: notes}
	return r, nil
}

// resolvedMetric is one metric chosen for comparison.
type resolvedMetric struct {
	name   string
	unit   string
	period uint64
}

// resolveMetrics picks the compared metrics: the explicit list (each must
// be a raw column of every input) or the baseline's raw columns that every
// input shares, skipped ones noted.
func resolveMetrics(want []string, inputs []Input, labels []string) ([]resolvedMetric, []string, error) {
	var notes []string
	check := func(name string) (missing string, notRaw string) {
		for i, in := range inputs {
			d := in.Exp.Tree.Reg.ByName(name)
			if d == nil {
				return labels[i], ""
			}
			if d.Kind != metric.Raw {
				return "", fmt.Sprintf("%s in input %s", d.Kind, labels[i])
			}
		}
		return "", ""
	}
	var out []resolvedMetric
	add := func(name string) {
		d := inputs[0].Exp.Tree.Reg.ByName(name)
		out = append(out, resolvedMetric{name: name, unit: d.Unit, period: d.Period})
	}
	if len(want) > 0 {
		for _, name := range want {
			missing, notRaw := check(name)
			if missing != "" {
				return nil, nil, fmt.Errorf("diff: metric %q missing from input %s", name, missing)
			}
			if notRaw != "" {
				return nil, nil, fmt.Errorf("diff: metric %q is %s, not raw (only sampled cost columns diff)", name, notRaw)
			}
			add(name)
		}
		return out, notes, nil
	}
	for _, d := range inputs[0].Exp.Tree.Reg.Columns() {
		if d.Kind != metric.Raw {
			continue
		}
		missing, notRaw := check(d.Name)
		if missing != "" {
			notes = append(notes, fmt.Sprintf("diff: metric %q missing from input %s; skipped", d.Name, missing))
			continue
		}
		if notRaw != "" {
			notes = append(notes, fmt.Sprintf("diff: metric %q is %s; skipped", d.Name, notRaw))
			continue
		}
		add(d.Name)
	}
	if len(out) == 0 {
		return nil, nil, fmt.Errorf("diff: no raw metric common to all inputs")
	}
	return out, notes, nil
}

// diffProgram names the union: the shared program name, or the names
// joined when the inputs measured different programs.
func diffProgram(inputs []Input) string {
	name := inputs[0].Exp.Program
	for _, in := range inputs[1:] {
		if in.Exp.Program != name {
			parts := make([]string, len(inputs))
			for i := range inputs {
				parts[i] = inputs[i].Exp.Program
			}
			return strings.Join(parts, " vs ")
		}
	}
	return name
}

func allBits(n int) uint8 { return uint8(1<<uint(n)) - 1 }

// unionBuilder carries the state of the recursive simultaneous walk.
type unionBuilder struct {
	r       *Result
	metrics []MetricCols
	srcCols [][]int
}

func (b *unionBuilder) setPresent(n *core.Node, bits uint8) {
	row := int(n.Base.Row())
	for row >= len(b.r.present) {
		b.r.present = append(b.r.present, 0)
	}
	b.r.present[row] |= bits
}

// union merges the children of ins (the per-input instances of the scope
// out represents; nil where an input lacks it) under out. Child order is
// first appearance scanning the inputs in argument order — for inputs of
// identical shape, their own order.
func (b *unionBuilder) union(out *core.Node, ins []*core.Node) {
	type slot struct {
		key core.Key
		ins []*core.Node
	}
	var order []slot
	var idx map[core.Key]int
	for i, in := range ins {
		if in == nil {
			continue
		}
		if idx == nil && len(order) == 0 && i == firstPresent(ins) && sameShape(ins, in) {
			// Fast path: every present input has an identical child key
			// sequence (self-diffs, runs of one binary), so the slots are
			// exactly in's children with no map.
			for _, c := range in.Children {
				s := slot{key: c.Key, ins: make([]*core.Node, len(ins))}
				for j, other := range ins {
					if other != nil {
						s.ins[j] = other.Children[len(order)]
					}
				}
				order = append(order, s)
			}
			break
		}
		if idx == nil {
			idx = make(map[core.Key]int, len(order)+len(in.Children))
			for j := range order {
				idx[order[j].key] = j
			}
		}
		for _, c := range in.Children {
			j, ok := idx[c.Key]
			if !ok {
				j = len(order)
				idx[c.Key] = j
				order = append(order, slot{key: c.Key, ins: make([]*core.Node, len(ins))})
			}
			order[j].ins[i] = c
		}
	}
	for _, s := range order {
		c := out.Child(s.key, true)
		var bits uint8
		var first *core.Node
		for i, in := range s.ins {
			if in == nil {
				continue
			}
			bits |= 1 << uint(i)
			if first == nil {
				first = in
			}
		}
		c.NoSource = first.NoSource
		c.Mod = first.Mod
		c.CallLine = first.CallLine
		c.CallFile = first.CallFile
		b.setPresent(c, bits)
		for i, in := range s.ins {
			if in == nil {
				continue
			}
			norm := b.r.Inputs[i].Norm
			for mi := range b.metrics {
				if v := in.Base.Get(b.srcCols[i][mi]); v != 0 {
					c.Base.Add(b.metrics[mi].In[i], v*norm)
				}
			}
		}
		b.union(c, s.ins)
	}
}

// firstPresent returns the index of the first non-nil input instance.
func firstPresent(ins []*core.Node) int {
	for i, in := range ins {
		if in != nil {
			return i
		}
	}
	return -1
}

// sameShape reports whether every present input instance has exactly
// ref's child key sequence.
func sameShape(ins []*core.Node, ref *core.Node) bool {
	for _, in := range ins {
		if in == nil || in == ref {
			continue
		}
		if len(in.Children) != len(ref.Children) {
			return false
		}
		for k, c := range ref.Children {
			if in.Children[k].Key != c.Key {
				return false
			}
		}
	}
	return true
}

// buildTasks enumerates the kernel work items once, so steady-state
// Recompute calls allocate nothing.
func (r *Result) buildTasks() {
	for mi := range r.Metrics {
		for ii := 1; ii < len(r.Inputs); ii++ {
			r.tasks = append(r.tasks,
				kernelTask{plane: metric.PlaneIncl, mi: mi, ii: ii},
				kernelTask{plane: metric.PlaneExcl, mi: mi, ii: ii})
		}
	}
}

// Recompute refills every computed column (deltas, ratios, losses,
// presence) from the per-input columns with whole-column kernels. Diff
// calls it once; callers that recompute the union's presented metrics
// (core.Tree.ComputeMetrics wipes computed columns) call it again. The
// steady state allocates nothing and, with Jobs > 1, runs the kernels
// concurrently — the result is identical either way, since every task
// writes its own columns.
func (r *Result) Recompute() {
	st := r.Tree.MetricStore()
	rows := st.NumRows()
	// Materialize every slab the kernels touch single-threaded: Col may
	// grow store bookkeeping, which must not race.
	for _, mc := range r.Metrics {
		for _, p := range []metric.Plane{metric.PlaneIncl, metric.PlaneExcl} {
			for _, c := range mc.In {
				st.Col(p, c)
			}
			for i := range mc.Delta {
				st.Col(p, mc.Delta[i])
				st.Col(p, mc.Ratio[i])
				if mc.Loss != nil {
					st.Col(p, mc.Loss[i])
				}
			}
		}
	}
	if r.jobs <= 1 || len(r.tasks) <= 1 {
		for _, tk := range r.tasks {
			r.runKernel(st, rows, tk)
		}
	} else {
		workers := r.jobs
		if workers > len(r.tasks) {
			workers = len(r.tasks)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * len(r.tasks) / workers
			hi := (w + 1) * len(r.tasks) / workers
			wg.Add(1)
			go func(tasks []kernelTask) {
				defer wg.Done()
				for _, tk := range tasks {
					r.runKernel(st, rows, tk)
				}
			}(r.tasks[lo:hi])
		}
		wg.Wait()
	}
	r.fillPresence(st)
}

// runKernel computes one metric's comparison columns against one input on
// one plane: linear sweeps over contiguous slabs. Zero results are
// normalized (+0): slabs never hold negative zero, and the per-node
// reference path cannot produce one either.
func (r *Result) runKernel(st *metric.Store, rows int, tk kernelTask) {
	mc := &r.Metrics[tk.mi]
	a := st.ColRead(tk.plane, mc.In[0])
	bcol := st.ColRead(tk.plane, mc.In[tk.ii])
	d := st.ColRead(tk.plane, mc.Delta[tk.ii-1])
	q := st.ColRead(tk.plane, mc.Ratio[tk.ii-1])
	var ls []float64
	if mc.Loss != nil {
		ls = st.ColRead(tk.plane, mc.Loss[tk.ii-1])
	}
	f := r.Inputs[tk.ii].Factor
	for row := 0; row < rows; row++ {
		var av, bv float64
		if row < len(a) {
			av = a[row]
		}
		if row < len(bcol) {
			bv = bcol[row]
		}
		dv := bv - av
		if dv == 0 {
			dv = 0
		}
		d[row] = dv
		var qv float64
		if av != 0 {
			qv = bv / av
			if qv == 0 {
				qv = 0
			}
		}
		q[row] = qv
		if ls != nil {
			var lv float64
			if bv != 0 {
				lv = 1 - av*f/bv
				if lv == 0 {
					lv = 0
				}
			}
			ls[row] = lv
		}
	}
}

// fillPresence writes the presence columns from the per-row bitmask: 1 in
// both presented planes wherever the input has the scope.
func (r *Result) fillPresence(st *metric.Store) {
	for i := range r.Inputs {
		col := r.Inputs[i].PresenceCol
		incl := st.Col(metric.PlaneIncl, col)
		excl := st.Col(metric.PlaneExcl, col)
		bit := uint8(1) << uint(i)
		for row, bits := range r.present {
			if bits&bit != 0 {
				incl[row], excl[row] = 1, 1
			} else {
				incl[row], excl[row] = 0, 0
			}
		}
	}
}

// PresentIn reports whether union scope n exists in input i.
func (r *Result) PresentIn(n *core.Node, i int) bool {
	row := int(n.Base.Row())
	return row < len(r.present) && r.present[row]&(1<<uint(i)) != 0
}
