package diff

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/expdb"
)

// randTree grows a random CCT from a small name pool, so independently
// generated trees overlap structurally but not exactly. Some scopes get a
// zero cost on purpose: a present-but-free scope must stay distinguishable
// from an absent one.
func randTree(rng *rand.Rand, tr *core.Tree) {
	names := []string{"main", "solve", "mpi_wait", "pack", "halo", "io", "norm", "setup"}
	var grow func(n *core.Node, depth int)
	grow = func(n *core.Node, depth int) {
		if depth >= 5 {
			return
		}
		kids := rng.Intn(4)
		for i := 0; i < kids; i++ {
			c := n.Child(fkey(names[rng.Intn(len(names))]), true)
			if rng.Intn(4) > 0 { // 1 in 4 scopes is present with zero cost
				c.Base.Add(0, float64(rng.Intn(1000)))
			}
			grow(c, depth+1)
		}
	}
	root := tr.AddPath(fkey("main"))
	root.Base.Add(0, float64(1+rng.Intn(100)))
	grow(root, 1)
}

// randExp wraps randTree as an experiment with the given rank count.
func randExp(t testing.TB, rng *rand.Rand, ranks int) *expdb.Experiment {
	return newExp(t, "prop", ranks, []string{"CYCLES"}, func(tr *core.Tree) { randTree(rng, tr) })
}

// corresponding returns the node in other matching n's key path, or nil.
func corresponding(other *core.Tree, n *core.Node) *core.Node {
	var keys []core.Key
	for p := n; p != nil && p.Parent != nil; p = p.Parent {
		keys = append(keys, p.Key)
	}
	m := other.Root
	for i := len(keys) - 1; i >= 0 && m != nil; i-- {
		m = m.Child(keys[i], false)
	}
	return m
}

// eachPlaneValue visits incl and excl of one column at one node.
func eachPlaneValue(n *core.Node, col int, f func(plane string, v float64)) {
	f("incl", n.Incl.Get(col))
	f("excl", n.Excl.Get(col))
}

// TestDiffPropSelfDiffZero: diff(A, A) has bitwise-+0 deltas everywhere,
// ratio exactly 1 wherever the cost is non-zero, and — under an explicit
// scaling mode — zero loss.
func TestDiffPropSelfDiffZero(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a := randExp(t, rng, 1+rng.Intn(8))
		res, err := Diff(Config{Mode: ModeWeak}, Input{Exp: a}, Input{Exp: a})
		if err != nil {
			t.Fatal(err)
		}
		mc := res.Metrics[0]
		core.Walk(res.Tree.Root, func(n *core.Node) bool {
			eachPlaneValue(n, mc.Delta[0], func(plane string, v float64) {
				if math.Float64bits(v) != 0 {
					t.Fatalf("seed %d: %s %s delta = %v (bits %x), want +0",
						seed, n.Label(), plane, v, math.Float64bits(v))
				}
			})
			if c := n.Incl.Get(mc.In[0]); c != 0 {
				if got := n.Incl.Get(mc.Ratio[0]); got != 1 {
					t.Fatalf("seed %d: %s ratio = %v at cost %v, want 1", seed, n.Label(), got, c)
				}
				if got := n.Incl.Get(mc.Loss[0]); got != 0 {
					t.Fatalf("seed %d: %s loss = %v, want 0", seed, n.Label(), got)
				}
			}
			if !res.PresentIn(n, 0) || !res.PresentIn(n, 1) {
				t.Fatalf("seed %d: %s not present in both halves of a self-diff", seed, n.Label())
			}
			return true
		})
	}
}

// TestDiffPropAntisymmetry: swapping the arguments negates every delta
// bitwise (+0 stays +0, never −0) and inverts every ratio where defined.
func TestDiffPropAntisymmetry(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		a, b := randExp(t, rng, 1), randExp(t, rng, 1)
		ab, err := Diff(Config{}, Input{Exp: a}, Input{Exp: b})
		if err != nil {
			t.Fatal(err)
		}
		ba, err := Diff(Config{}, Input{Exp: b}, Input{Exp: a})
		if err != nil {
			t.Fatal(err)
		}
		if ab.Tree.NumNodes() != ba.Tree.NumNodes() {
			t.Fatalf("seed %d: union sizes differ under swap: %d vs %d",
				seed, ab.Tree.NumNodes(), ba.Tree.NumNodes())
		}
		fw, bw := ab.Metrics[0], ba.Metrics[0]
		core.Walk(ab.Tree.Root, func(n *core.Node) bool {
			m := corresponding(ba.Tree, n)
			if m == nil {
				t.Fatalf("seed %d: %s missing from swapped union", seed, n.Label())
			}
			for _, pl := range []struct {
				name string
				da   func(*core.Node, int) float64
			}{
				{"incl", func(n *core.Node, c int) float64 { return n.Incl.Get(c) }},
				{"excl", func(n *core.Node, c int) float64 { return n.Excl.Get(c) }},
			} {
				d1, d2 := pl.da(n, fw.Delta[0]), pl.da(m, bw.Delta[0])
				want := -d1
				if want == 0 {
					want = 0 // deltas are normalized: zero negates to +0
				}
				if math.Float64bits(d2) != math.Float64bits(want) {
					t.Fatalf("seed %d: %s %s delta %v does not negate to %v (got %v)",
						seed, n.Label(), pl.name, d1, want, d2)
				}
				q1, q2 := pl.da(n, fw.Ratio[0]), pl.da(m, bw.Ratio[0])
				if q1 != 0 && q2 != 0 {
					if r := q1 * q2; math.Abs(r-1) > 1e-12 {
						t.Fatalf("seed %d: %s %s ratios %v·%v = %v, want 1", seed, n.Label(), pl.name, q1, q2, r)
					}
				}
			}
			// Presence swaps with the argument order.
			if ab.PresentIn(n, 0) != ba.PresentIn(m, 1) || ab.PresentIn(n, 1) != ba.PresentIn(m, 0) {
				t.Fatalf("seed %d: %s presence did not swap", seed, n.Label())
			}
			return true
		})
	}
}

// TestDiffPropUnionMonotonic: the union has at least as many scopes as the
// largest input and no more than the inputs' sum, and every input scope
// appears in the union (flagged present).
func TestDiffPropUnionMonotonic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(2000 + seed))
		nIn := 2 + rng.Intn(3)
		ins := make([]Input, nIn)
		sum, max := 0, 0
		for i := range ins {
			ins[i].Exp = randExp(t, rng, 1)
			n := ins[i].Exp.Tree.NumNodes()
			sum += n
			if n > max {
				max = n
			}
		}
		res, err := Diff(Config{}, ins...)
		if err != nil {
			t.Fatal(err)
		}
		got := res.Tree.NumNodes()
		if got < max || got > sum {
			t.Fatalf("seed %d: union of %d inputs has %d nodes, want in [%d, %d]", seed, nIn, got, max, sum)
		}
		for i, in := range ins {
			core.Walk(in.Exp.Tree.Root, func(n *core.Node) bool {
				if n.Parent == nil {
					return true
				}
				m := corresponding(res.Tree, n)
				if m == nil {
					t.Fatalf("seed %d: input %d scope %s missing from union", seed, i, n.Label())
				}
				if !res.PresentIn(m, i) {
					t.Fatalf("seed %d: input %d scope %s not flagged present", seed, i, n.Label())
				}
				return true
			})
		}
	}
}

// TestDiffPropAbsentVsZero: a scope an input has with zero cost and a
// scope it lacks entirely both read zero cost, and only the presence
// column tells them apart.
func TestDiffPropAbsentVsZero(t *testing.T) {
	a := newExp(t, "p", 1, []string{"CYCLES"}, func(tr *core.Tree) {
		tr.AddPath(fkey("main")).Base.Add(0, 10)
		tr.AddPath(fkey("main"), fkey("z")) // present in A, zero cost
	})
	b := newExp(t, "p", 1, []string{"CYCLES"}, func(tr *core.Tree) {
		tr.AddPath(fkey("main")).Base.Add(0, 10)
		tr.AddPath(fkey("main"), fkey("w")).Base.Add(0, 0) // absent from A
	})
	res, err := Diff(Config{}, Input{Exp: a}, Input{Exp: b})
	if err != nil {
		t.Fatal(err)
	}
	z := res.Tree.FindPath("main", "z")
	w := res.Tree.FindPath("main", "w")
	if z == nil || w == nil {
		t.Fatalf("union lost a zero-cost scope: z=%v w=%v", z, w)
	}
	mc := res.Metrics[0]
	for _, n := range []*core.Node{z, w} {
		if got := n.Incl.Get(mc.In[0]); got != 0 {
			t.Fatalf("%s cost in A = %v, want 0", n.Label(), got)
		}
	}
	// Identical costs — but different presence.
	if !res.PresentIn(z, 0) {
		t.Fatal("zero-cost scope z not marked present in A")
	}
	if res.PresentIn(w, 0) {
		t.Fatal("absent scope w marked present in A")
	}
	pc := res.Inputs[0].PresenceCol
	if z.Incl.Get(pc) != 1 || w.Incl.Get(pc) != 0 {
		t.Fatalf("presence column in[A]: z=%v w=%v, want 1, 0", z.Incl.Get(pc), w.Incl.Get(pc))
	}
}

// TestDiffPropJobsDeterminism: the serialized diff is byte-identical for
// any Jobs setting, and stays so after a wipe-and-recompute cycle.
func TestDiffPropJobsDeterminism(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(3000 + seed))
		gen := rng.Int63()
		mk := func(jobs int) []byte {
			r1 := rand.New(rand.NewSource(gen))
			a := randExp(t, r1, 2)
			b := randExp(t, r1, 8)
			res, err := Diff(Config{Jobs: jobs}, Input{Exp: a}, Input{Exp: b})
			if err != nil {
				t.Fatal(err)
			}
			// Exercise the steady-state path too: wipe the computed
			// columns and refill them.
			res.Tree.ComputeMetrics()
			res.Recompute()
			var buf bytes.Buffer
			if err := res.Exp.WriteBinary(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}
		want := mk(1)
		for _, jobs := range []int{2, 8} {
			if got := mk(jobs); !bytes.Equal(got, want) {
				t.Fatalf("seed %d: jobs=%d serialization differs from jobs=1 (%d vs %d bytes)",
					seed, jobs, len(got), len(want))
			}
		}
	}
}

// TestDiffPropRoundTripRandom widens TestDiffRoundTrip: random tree pairs
// survive both formats bitwise, repeatedly.
func TestDiffPropRoundTripRandom(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(4000 + seed))
		a := randExp(t, rng, 1+rng.Intn(4))
		b := randExp(t, rng, 1+rng.Intn(16))
		res, err := Diff(Config{}, Input{Exp: a}, Input{Exp: b})
		if err != nil {
			t.Fatal(err)
		}
		for _, format := range []struct {
			name  string
			write func(*expdb.Experiment, *bytes.Buffer) error
		}{
			{"v2", func(e *expdb.Experiment, w *bytes.Buffer) error { return e.WriteBinary(w) }},
			{"v1", func(e *expdb.Experiment, w *bytes.Buffer) error { return e.WriteBinaryV1(w) }},
		} {
			var buf bytes.Buffer
			if err := format.write(res.Exp, &buf); err != nil {
				t.Fatal(err)
			}
			got, err := expdb.Read(&buf)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, format.name, err)
			}
			ncols := res.Tree.Reg.Len()
			core.Walk(res.Tree.Root, func(n *core.Node) bool {
				m := corresponding(got.Tree, n)
				if m == nil && n.Parent == nil {
					m = got.Tree.Root
				}
				if m == nil {
					t.Fatalf("seed %d %s: %s lost in round trip", seed, format.name, n.Label())
				}
				for id := 0; id < ncols; id++ {
					if w, g := n.Incl.Get(id), m.Incl.Get(id); math.Float64bits(w) != math.Float64bits(g) {
						t.Fatalf("seed %d %s: %s incl col %d: %v != %v", seed, format.name, n.Label(), id, g, w)
					}
					if w, g := n.Excl.Get(id), m.Excl.Get(id); math.Float64bits(w) != math.Float64bits(g) {
						t.Fatalf("seed %d %s: %s excl col %d: %v != %v", seed, format.name, n.Label(), id, g, w)
					}
				}
				return true
			})
		}
	}
}
