package diff

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/expdb"
)

// fuzzSeedBytes serializes an experiment for the fuzz corpus.
func fuzzSeedBytes(f *testing.F, e *expdb.Experiment) []byte {
	f.Helper()
	var buf bytes.Buffer
	if err := e.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDiff feeds two serialized databases through the full read → union →
// kernel → re-serialize path. Whatever the readers accept, the diff must
// not panic; when it succeeds, the union must contain every input scope
// and its serialized form must be deterministic and readable.
func FuzzDiff(f *testing.F) {
	mk := func(program string, ranks int, cols []string, build func(tr *core.Tree)) []byte {
		return fuzzSeedBytes(f, newExp(f, program, ranks, cols, build))
	}
	// Baseline pair: same shape, same metrics, equal ranks.
	f.Add(mk("p", 1, []string{"CYCLES"}, twoProcTree),
		mk("p", 1, []string{"CYCLES"}, twoProcTree))
	// Mismatched metric sets: the common subset diffs, the rest is noted.
	f.Add(mk("p", 1, []string{"CYCLES", "FLOPS"}, twoProcTree),
		mk("p", 1, []string{"CYCLES"}, twoProcTree))
	// Fully disjoint metric sets: the diff must reject, not panic.
	f.Add(mk("p", 1, []string{"CYCLES"}, twoProcTree),
		mk("p", 1, []string{"INSTR"}, twoProcTree))
	// Disjoint trees: every scope is one-sided.
	f.Add(mk("p", 1, []string{"CYCLES"}, func(tr *core.Tree) {
		tr.AddPath(fkey("main"), fkey("left")).Base.Add(0, 5)
	}), mk("p", 1, []string{"CYCLES"}, func(tr *core.Tree) {
		tr.AddPath(fkey("start"), fkey("right")).Base.Add(0, 9)
	}))
	// Rank-count mismatch: per-rank normalization and loss columns.
	f.Add(mk("p", 2, []string{"CYCLES"}, twoProcTree),
		mk("p", 64, []string{"CYCLES"}, twoProcTree))
	// Truncated second input: the reader rejects it before the diff runs.
	whole := mk("p", 1, []string{"CYCLES"}, twoProcTree)
	f.Add(whole, whole[:len(whole)*2/3])

	f.Fuzz(func(t *testing.T, da, db []byte) {
		a, err := expdb.ReadBinary(bytes.NewReader(da))
		if err != nil {
			return
		}
		b, err := expdb.ReadBinary(bytes.NewReader(db))
		if err != nil {
			return
		}
		res, err := Diff(Config{}, Input{Exp: a}, Input{Exp: b})
		if err != nil {
			return // structurally incompatible inputs must fail cleanly
		}
		na, nb, nu := a.Tree.NumNodes(), b.Tree.NumNodes(), res.Tree.NumNodes()
		if nu < na || nu < nb || nu > na+nb {
			t.Fatalf("union has %d nodes from inputs of %d and %d", nu, na, nb)
		}
		var out1, out2 bytes.Buffer
		if err := res.Exp.WriteBinary(&out1); err != nil {
			t.Fatalf("serializing diff result: %v", err)
		}
		if err := res.Exp.WriteBinary(&out2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
			t.Fatal("diff serialization is not deterministic")
		}
		if _, err := expdb.ReadBinary(bytes.NewReader(out1.Bytes())); err != nil {
			t.Fatalf("diff result does not re-read: %v", err)
		}
	})
}
