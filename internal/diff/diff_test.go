package diff

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/expdb"
	"repro/internal/ingest"
	"repro/internal/metric"
)

// fkey builds a frame key for hand-built trees.
func fkey(name string) core.Key {
	return core.Key{Kind: core.KindFrame, Name: core.Sym(name), File: core.Sym(name + ".c"), Line: 1}
}

func skey(file string, line int) core.Key {
	return core.Key{Kind: core.KindStmt, File: core.Sym(file), Line: line}
}

// newExp builds a store-backed experiment with CYCLES (and optionally
// FLOPS) columns; build populates the tree.
func newExp(t testing.TB, program string, ranks int, cols []string, build func(tr *core.Tree)) *expdb.Experiment {
	t.Helper()
	reg := metric.NewRegistry()
	for _, c := range cols {
		if _, err := reg.AddRaw(c, strings.ToLower(c), 1); err != nil {
			t.Fatal(err)
		}
	}
	tr := core.NewTree(program, reg)
	build(tr)
	tr.ComputeMetrics()
	e := expdb.New(tr)
	e.NRanks = ranks
	return e
}

// twoProcTree puts work in main->f and main->g->stmt.
func twoProcTree(tr *core.Tree) {
	f := tr.AddPath(fkey("main"), fkey("f"))
	f.Base.Add(0, 100)
	s := tr.AddPath(fkey("main"), fkey("g"), skey("g.c", 3))
	s.Base.Add(0, 40)
}

func TestDiffBasics(t *testing.T) {
	a := newExp(t, "p", 1, []string{"CYCLES"}, twoProcTree)
	b := newExp(t, "p", 1, []string{"CYCLES"}, func(tr *core.Tree) {
		f := tr.AddPath(fkey("main"), fkey("f"))
		f.Base.Add(0, 150) // f regressed by 50
		s := tr.AddPath(fkey("main"), fkey("g"), skey("g.c", 3))
		s.Base.Add(0, 10)                        // g improved by 30
		h := tr.AddPath(fkey("main"), fkey("h")) // new scope
		h.Base.Add(0, 7)
	})
	res, err := Diff(Config{}, Input{Exp: a}, Input{Exp: b})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeNone || res.PerRank {
		t.Fatalf("equal ranks resolved to mode=%v perRank=%v", res.Mode, res.PerRank)
	}
	mc := res.Metrics[0]
	if mc.Name != "CYCLES" || mc.Loss != nil {
		t.Fatalf("metrics = %+v", mc)
	}
	fn := res.Tree.FindPath("main", "f")
	if fn == nil {
		t.Fatal("union lost main>f")
	}
	if got := fn.Incl.Get(mc.Delta[0]); got != 50 {
		t.Fatalf("f delta = %v, want 50", got)
	}
	if got := fn.Incl.Get(mc.Ratio[0]); got != 1.5 {
		t.Fatalf("f ratio = %v, want 1.5", got)
	}
	gn := res.Tree.FindPath("main", "g")
	if got := gn.Incl.Get(mc.Delta[0]); got != -30 {
		t.Fatalf("g delta = %v, want -30", got)
	}
	hn := res.Tree.FindPath("main", "h")
	if hn == nil {
		t.Fatal("union lost B-only scope h")
	}
	if res.PresentIn(hn, 0) || !res.PresentIn(hn, 1) {
		t.Fatalf("h presence = (%v,%v), want (false,true)", res.PresentIn(hn, 0), res.PresentIn(hn, 1))
	}
	if got := hn.Incl.Get(res.Inputs[0].PresenceCol); got != 0 {
		t.Fatalf("in[A] at h = %v, want 0", got)
	}
	if got := hn.Incl.Get(res.Inputs[1].PresenceCol); got != 1 {
		t.Fatalf("in[B] at h = %v, want 1", got)
	}

	rep, err := res.Report(ReportOptions{Threshold: -1, Top: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 2 { // f (+50) and h (+7)
		t.Fatalf("regressions = %+v", rep.Regressions)
	}
	if rep.Regressions[0].Path[len(rep.Regressions[0].Path)-1] != "f" {
		t.Fatalf("top regression = %+v, want f", rep.Regressions[0])
	}
	if rep.Regressions[1].OnlyIn != "B" {
		t.Fatalf("h entry = %+v, want only-in B", rep.Regressions[1])
	}
	if len(rep.Improvements) != 1 || rep.Improvements[0].Path[len(rep.Improvements[0].Path)-1] != "g" {
		t.Fatalf("improvements = %+v, want g", rep.Improvements)
	}
	var text bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"differential profile: p", "regressions", "only in B", "f", "improvements"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text report missing %q:\n%s", want, text.String())
		}
	}
}

func TestDiffNormalizationAndLoss(t *testing.T) {
	// 2 ranks vs 8 ranks: per-rank auto-normalization, weak auto-mode.
	a := newExp(t, "p", 2, []string{"CYCLES"}, func(tr *core.Tree) {
		tr.AddPath(fkey("main"), fkey("f")).Base.Add(0, 200) // 100/rank
	})
	b := newExp(t, "p", 8, []string{"CYCLES"}, func(tr *core.Tree) {
		tr.AddPath(fkey("main"), fkey("f")).Base.Add(0, 3200) // 400/rank
	})
	res, err := Diff(Config{}, Input{Exp: a}, Input{Exp: b})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeWeak || !res.PerRank {
		t.Fatalf("resolved mode=%v perRank=%v, want weak per-rank", res.Mode, res.PerRank)
	}
	mc := res.Metrics[0]
	fn := res.Tree.FindPath("main", "f")
	if got := fn.Incl.Get(mc.In[0]); got != 100 {
		t.Fatalf("A per-rank cost = %v, want 100", got)
	}
	if got := fn.Incl.Get(mc.In[1]); got != 400 {
		t.Fatalf("B per-rank cost = %v, want 400", got)
	}
	if got := fn.Incl.Get(mc.Delta[0]); got != 300 {
		t.Fatalf("delta = %v, want 300", got)
	}
	// Weak scaling expects per-rank cost constant: loss = 1 - 100/400.
	if got := fn.Incl.Get(mc.Loss[0]); got != 0.75 {
		t.Fatalf("loss = %v, want 0.75", got)
	}

	// Strong scaling with per-rank costs: ideal per-rank cost shrinks by
	// ranks0/ranks1 = 1/4, so expected is 25 and loss = 1 - 25/400.
	res, err = Diff(Config{Mode: ModeStrong, Norm: NormPerRank}, Input{Exp: a}, Input{Exp: b})
	if err != nil {
		t.Fatal(err)
	}
	mc = res.Metrics[0]
	fn = res.Tree.FindPath("main", "f")
	if got := fn.Incl.Get(mc.Loss[0]); got != 1-25.0/400 {
		t.Fatalf("strong loss = %v, want %v", got, 1-25.0/400)
	}
}

func TestDiffMetricResolution(t *testing.T) {
	a := newExp(t, "p", 1, []string{"CYCLES", "FLOPS"}, twoProcTree)
	b := newExp(t, "p", 1, []string{"CYCLES"}, twoProcTree)

	// Default metrics: the common subset, with a note for the skipped one.
	res, err := Diff(Config{}, Input{Exp: a}, Input{Exp: b})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Metrics) != 1 || res.Metrics[0].Name != "CYCLES" {
		t.Fatalf("metrics = %+v, want CYCLES only", res.Metrics)
	}
	found := false
	for _, n := range res.Exp.Notes {
		if strings.Contains(n, "FLOPS") && strings.Contains(n, "skipped") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no skip note for FLOPS in %v", res.Exp.Notes)
	}

	// An explicitly requested metric must exist everywhere.
	if _, err := Diff(Config{Metrics: []string{"FLOPS"}}, Input{Exp: a}, Input{Exp: b}); err == nil {
		t.Fatal("explicit missing metric did not error")
	}
	// No common metric at all.
	c := newExp(t, "p", 1, []string{"INSTR"}, twoProcTree)
	if _, err := Diff(Config{}, Input{Exp: a}, Input{Exp: c}); err == nil {
		t.Fatal("disjoint metric sets did not error")
	}
}

func TestDiffInputValidation(t *testing.T) {
	a := newExp(t, "p", 1, []string{"CYCLES"}, twoProcTree)
	if _, err := Diff(Config{}, Input{Exp: a}); err == nil {
		t.Fatal("single input did not error")
	}
	if _, err := Diff(Config{}, Input{Exp: a}, Input{Exp: nil}); err == nil {
		t.Fatal("nil input did not error")
	}
	if _, err := Diff(Config{}, Input{Label: "x y", Exp: a}, Input{Exp: a}); err == nil {
		t.Fatal("label with space did not error")
	}
	if _, err := Diff(Config{}, Input{Label: "x", Exp: a}, Input{Label: "x", Exp: a}); err == nil {
		t.Fatal("duplicate label did not error")
	}
	ins := make([]Input, MaxInputs+1)
	for i := range ins {
		ins[i].Exp = a
	}
	if _, err := Diff(Config{}, ins...); err == nil {
		t.Fatal("too many inputs did not error")
	}
}

func TestDiffProvenanceNotes(t *testing.T) {
	a := newExp(t, "p", 2, []string{"CYCLES"}, twoProcTree)
	b := newExp(t, "p", 2, []string{"CYCLES"}, twoProcTree)
	b.Provenance = &ingest.Report{Attempted: 3, Merged: 2,
		Bad: []ingest.BadRank{{Rank: 1, Class: ingest.ClassTruncated, Message: "short read"}}}
	b.Notes = append(b.Notes, "overrides section dropped")
	res, err := Diff(Config{}, Input{Label: "clean", Exp: a}, Input{Label: "dirty", Exp: b})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(res.Exp.Notes, "\n")
	if !strings.Contains(joined, "input dirty is quarantined") {
		t.Fatalf("no quarantine note: %q", joined)
	}
	if !strings.Contains(joined, "2 merged ranks") {
		t.Fatalf("no merged-rank count in note: %q", joined)
	}
	if !strings.Contains(joined, "input dirty: overrides section dropped") {
		t.Fatalf("input notes not propagated: %q", joined)
	}
	// A clean pair produces no notes at all.
	res, err = Diff(Config{}, Input{Exp: a}, Input{Label: "also-clean", Exp: a})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Exp.Notes) != 0 {
		t.Fatalf("clean diff has notes: %v", res.Exp.Notes)
	}
}

// TestDiffRoundTrip serializes a diff result through both binary formats
// and checks every presented value survives bitwise.
func TestDiffRoundTrip(t *testing.T) {
	a := newExp(t, "p", 2, []string{"CYCLES"}, twoProcTree)
	b := newExp(t, "p", 8, []string{"CYCLES"}, func(tr *core.Tree) {
		tr.AddPath(fkey("main"), fkey("f")).Base.Add(0, 999)
		tr.AddPath(fkey("main"), fkey("g"), skey("g.c", 3)).Base.Add(0, 1)
	})
	res, err := Diff(Config{}, Input{Exp: a}, Input{Exp: b})
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []struct {
		name  string
		write func(*expdb.Experiment, *bytes.Buffer) error
	}{
		{"v2", func(e *expdb.Experiment, w *bytes.Buffer) error { return e.WriteBinary(w) }},
		{"v1", func(e *expdb.Experiment, w *bytes.Buffer) error { return e.WriteBinaryV1(w) }},
	} {
		t.Run(format.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := format.write(res.Exp, &buf); err != nil {
				t.Fatal(err)
			}
			got, err := expdb.Read(&buf)
			if err != nil {
				t.Fatal(err)
			}
			ncols := res.Tree.Reg.Len()
			if got.Tree.Reg.Len() != ncols {
				t.Fatalf("reloaded %d columns, want %d", got.Tree.Reg.Len(), ncols)
			}
			var want []*core.Node
			core.Walk(res.Tree.Root, func(n *core.Node) bool { want = append(want, n); return true })
			var have []*core.Node
			core.Walk(got.Tree.Root, func(n *core.Node) bool { have = append(have, n); return true })
			if len(want) != len(have) {
				t.Fatalf("reloaded %d nodes, want %d", len(have), len(want))
			}
			for i := range want {
				for id := 0; id < ncols; id++ {
					if w, g := want[i].Incl.Get(id), have[i].Incl.Get(id); math.Float64bits(w) != math.Float64bits(g) {
						t.Fatalf("%s incl col %d: %v != %v", want[i].Label(), id, g, w)
					}
					if w, g := want[i].Excl.Get(id), have[i].Excl.Get(id); math.Float64bits(w) != math.Float64bits(g) {
						t.Fatalf("%s excl col %d: %v != %v", want[i].Label(), id, g, w)
					}
				}
			}
		})
	}
}
