// Allocation regression tests for the columnar query engine: once warm,
// re-evaluating derived metrics and re-sorting the tree must not allocate
// at all — the scratch buffers (topo index, kernel column lists, label
// cache) are the mechanism behind the BENCH_query.json allocs/op claims,
// and these tests keep them from regressing silently.
package repro

import (
	"testing"

	"repro/internal/core"
)

func TestApplyDerivedTreeSteadyStateAllocs(t *testing.T) {
	tr := syntheticCCT(20_000, 7)
	if _, err := tr.Reg.AddDerived("d1", "$0 * 2"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Reg.AddDerived("d2", "$1 + $0"); err != nil {
		t.Fatal(err)
	}
	tr.ComputeMetrics()
	// First run materializes the output columns and the compiled programs.
	if err := tr.ApplyDerivedTree(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := tr.ApplyDerivedTree(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm ApplyDerivedTree allocates %.1f objects/run, want 0", allocs)
	}
}

func TestSortTreeSteadyStateAllocs(t *testing.T) {
	tr := syntheticCCT(20_000, 7)
	tr.ComputeMetrics()
	desc := core.SortSpec{}
	asc := core.SortSpec{Ascending: true}
	byLabel := core.SortSpec{ByLabel: true}
	// Warm every direction once: the first sort interns the tie-break
	// labels and materializes the read-only column slabs.
	core.SortTree(tr.Root, desc)
	core.SortTree(tr.Root, asc)
	core.SortTree(tr.Root, byLabel)
	allocs := testing.AllocsPerRun(5, func() {
		core.SortTree(tr.Root, desc)
		core.SortTree(tr.Root, asc)
		core.SortTree(tr.Root, byLabel)
	})
	if allocs != 0 {
		t.Fatalf("warm SortTree allocates %.1f objects/run, want 0", allocs)
	}
}
