// Quickstart: run the paper's Figure 1 toy program through the whole
// pipeline — sampled execution, structure recovery, correlation — and
// present the result in the three complementary views of Section III, plus
// a hot path (Section V-C).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/callpath"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// Measure the "toy" workload: one rank, default sampling period.
	res, err := callpath.Run(callpath.RunConfig{Workload: "toy"})
	if err != nil {
		log.Fatal(err)
	}
	tree := res.Experiment.Tree
	cycles, err := callpath.MetricColumn(tree, "CYCLES")
	if err != nil {
		log.Fatal(err)
	}
	opts := callpath.RenderOptions{
		Columns: []callpath.RenderColumn{
			{MetricID: cycles, Inclusive: true},
			{MetricID: cycles, Inclusive: false},
		},
	}

	fmt.Println("=== Calling Context View (top-down, Section III-A) ===")
	if err := callpath.RenderTree(os.Stdout, tree, opts); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n=== Callers View (bottom-up, Section III-B) ===")
	cv := callpath.BuildCallersView(tree)
	if err := callpath.RenderCallers(os.Stdout, cv, tree, opts); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n=== Flat View (static structure, Section III-C) ===")
	fv := callpath.BuildFlatView(tree)
	if err := callpath.RenderFlat(os.Stdout, fv, tree, opts); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n=== Hot path (Equation 3, t = 50%) ===")
	for i, n := range callpath.HotPath(tree.Root, cycles, callpath.DefaultHotPathThreshold) {
		if n.Kind == callpath.KindRoot {
			continue
		}
		fmt.Printf("%*s%s  (%.1f%% of cycles)\n", 2*i, "", n.Label(),
			100*n.Incl.Get(cycles)/tree.Total(cycles))
	}

	// The paper's worked example (Figure 2) is also available as an
	// exact, hand-placed tree:
	fig1 := callpath.Fig1Tree()
	fmt.Println("\n=== The paper's Figure 2a worked example (exact) ===")
	if err := callpath.RenderTree(os.Stdout, fig1, callpath.RenderOptions{}); err != nil {
		log.Fatal(err)
	}
}
