// Combustion: analyze the S3D turbulent-combustion analogue the way the
// paper does in Figures 3 and 6 — hot-path analysis pinpoints the
// reaction-rate bottleneck in context, then derived floating-point waste
// and relative-efficiency metrics rank the tuning opportunities.
//
// Run with: go run ./examples/combustion
package main

import (
	"fmt"
	"log"
	"os"

	"repro/callpath"
)

// peak models the processor's peak FLOPs per cycle for the waste metric
// (Section V-D).
const peak = 4

func main() {
	log.SetFlags(0)
	log.SetPrefix("combustion: ")

	res, err := callpath.Run(callpath.RunConfig{Workload: "s3d"})
	if err != nil {
		log.Fatal(err)
	}
	tree := res.Experiment.Tree
	cycles, err := callpath.MetricColumn(tree, "CYCLES")
	if err != nil {
		log.Fatal(err)
	}

	// --- Figure 3: hot path through dynamic and static context. ---
	fmt.Println("=== Hot path over cycles (Figure 3) ===")
	path := callpath.HotPath(tree.Root, cycles, callpath.DefaultHotPathThreshold)
	hl := map[*callpath.Node]bool{}
	for _, n := range path {
		hl[n] = true
		if n.Kind == callpath.KindRoot {
			continue
		}
		fmt.Printf("  %-42s %5.1f%% of cycles\n", n.Label(), 100*n.Incl.Get(cycles)/tree.Total(cycles))
	}
	fmt.Println("\nNote how the path interleaves procedure frames with the loops")
	fmt.Println("containing their call sites (Section III-D.2), and ends at the")
	fmt.Println("chemistry routine that dominates the run.")

	// --- Figure 6: derived waste and efficiency metrics. ---
	waste, err := callpath.AddDerived(tree, "fpwaste", fmt.Sprintf("$%d*%d - $1", cycles, peak))
	if err != nil {
		log.Fatal(err)
	}
	releff, err := callpath.AddDerived(tree, "releff", fmt.Sprintf("$1 / ($%d*%d)", cycles, peak))
	if err != nil {
		log.Fatal(err)
	}

	fv := callpath.BuildFlatView(tree)
	for _, lm := range fv.Roots {
		if err := callpath.ApplyDerived(tree.Reg, lm); err != nil {
			log.Fatal(err)
		}
	}
	// Flatten to loop level so loops in different routines compare
	// directly (Section III-C / Figure 6).
	scopes := callpath.FlattenN(fv.Roots, 3)
	var loops []*callpath.Node
	for _, s := range scopes {
		if s.Kind == callpath.KindLoop {
			loops = append(loops, s)
		}
	}
	callpath.SortScopes(loops, callpath.SortSpec{MetricID: waste, Exclusive: true})

	fmt.Println("\n=== Loops ranked by floating-point waste (Figure 6) ===")
	totalWaste := tree.Root.Incl.Get(waste)
	fmt.Printf("%-36s %14s %8s %8s\n", "loop", "waste", "share", "releff")
	for _, l := range loops {
		w := l.Excl.Get(waste)
		if w <= 0 {
			continue
		}
		fmt.Printf("%-36s %14.3g %7.1f%% %8.2f\n", l.Label(), w, 100*w/totalWaste, l.Excl.Get(releff))
	}
	fmt.Println("\nThe memory-bound flux-diffusion loop tops the ranking at ~6%")
	fmt.Println("efficiency (a fat tuning target); the exponential's loop runs at")
	fmt.Println("~39% (already fairly tight) — exactly Figure 6's reading.")

	// Render the CCV with the hot path highlighted, top-2 children per
	// scope to keep the view focused (Section V-A's top-down focus).
	fmt.Println("\n=== Calling Context View, hot path highlighted ===")
	err = callpath.RenderTree(os.Stdout, tree, callpath.RenderOptions{
		Columns: []callpath.RenderColumn{
			{MetricID: cycles, Inclusive: true},
			{MetricID: cycles, Inclusive: false},
			{MetricID: waste, Inclusive: true},
		},
		TopN:      2,
		MaxDepth:  9,
		Highlight: hl,
	})
	if err != nil {
		log.Fatal(err)
	}
}
