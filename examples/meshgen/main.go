// Meshgen: analyze the MOAB mesh-benchmark analogue the way the paper does
// in Figures 4 and 5 — the Callers View shows that the compiler's memset
// replacement is called from two contexts with one dominating the L1
// misses, and the Flat View attributes cost through a hierarchy of loops
// and multiple levels of inlining.
//
// Run with: go run ./examples/meshgen
package main

import (
	"fmt"
	"log"
	"os"

	"repro/callpath"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("meshgen: ")

	res, err := callpath.Run(callpath.RunConfig{Workload: "moab"})
	if err != nil {
		log.Fatal(err)
	}
	tree := res.Experiment.Tree
	cycles, err := callpath.MetricColumn(tree, "CYCLES")
	if err != nil {
		log.Fatal(err)
	}
	l1, err := callpath.MetricColumn(tree, "L1_DCM")
	if err != nil {
		log.Fatal(err)
	}
	cols := callpath.RenderOptions{
		Columns: []callpath.RenderColumn{
			{MetricID: l1, Inclusive: true},
			{MetricID: l1, Inclusive: false},
			{MetricID: cycles, Inclusive: true},
		},
		Sort: callpath.SortSpec{MetricID: l1},
	}

	// --- Figure 4: the Callers View. ---
	fmt.Println("=== Callers View sorted by L1 misses (Figure 4) ===")
	cv := callpath.BuildCallersView(tree)
	cv.ExpandAll()
	if err := callpath.RenderCallers(os.Stdout, cv, tree, withDepth(cols, 3)); err != nil {
		log.Fatal(err)
	}
	for _, r := range cv.Roots {
		if r.Name.String() != "_intel_fast_memset.A" {
			continue
		}
		share := 100 * r.Incl.Get(l1) / tree.Total(l1)
		fmt.Printf("\n_intel_fast_memset.A accounts for %.1f%% of all L1 misses,\n", share)
		fmt.Printf("called from %d contexts:\n", len(r.Children))
		for _, c := range r.Children {
			fmt.Printf("  from %-28s %5.1f%% of all L1 misses\n",
				c.Label(), 100*c.Incl.Get(l1)/tree.Total(l1))
		}
	}

	// --- Figure 5: the Flat View with inlining. ---
	fmt.Println("\n=== Flat View: attribution through inlining (Figure 5) ===")
	fv := callpath.BuildFlatView(tree)
	if err := callpath.RenderFlat(os.Stdout, fv, tree, withDepth(cols, 8)); err != nil {
		log.Fatal(err)
	}

	// Narrate the get_coords hierarchy explicitly.
	var gc *callpath.Node
	for _, lm := range fv.Roots {
		callpath.Walk(lm, func(n *callpath.Node) bool {
			if n.Kind == callpath.KindProc && n.Name.String() == "MBCore::get_coords" {
				gc = n
				return false
			}
			return true
		})
	}
	if gc == nil {
		log.Fatal("get_coords not found")
	}
	fmt.Printf("\nMBCore::get_coords holds %.1f%% of total cycles, all of it in\n",
		100*gc.Incl.Get(cycles)/tree.Total(cycles))
	fmt.Println("one loop, flowing through inlined find -> inlined search loop ->")
	fmt.Println("inlined SequenceCompare; the comparison operator alone causes")
	callpath.Walk(gc, func(n *callpath.Node) bool {
		if n.Kind == callpath.KindAlien && n.Name.String() == "SequenceCompare" {
			fmt.Printf("%.1f%% of the execution's L1 data cache misses.\n",
				100*n.Incl.Get(l1)/tree.Total(l1))
			return false
		}
		return true
	})
}

func withDepth(o callpath.RenderOptions, d int) callpath.RenderOptions {
	o.MaxDepth = d
	return o
}
