// Scaling: reproduce the paper's Section VI-A analysis — "pinpoint and
// quantify scalability bottlenecks in context [by] scaling and
// differencing call path profiles from a pair of executions". Two
// PFLOTRAN runs at different widths are differenced under a weak-scaling
// expectation; the resulting scaling-loss column drives hot-path analysis
// and sorting just like any measured metric.
//
// Run with: go run ./examples/scaling [-small 4] [-big 16]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/callpath"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scaling: ")
	small := flag.Int("small", 4, "ranks in the small run")
	big := flag.Int("big", 16, "ranks in the big run")
	flag.Parse()

	runAt := func(ranks int) *callpath.Tree {
		res, err := callpath.Run(callpath.RunConfig{Workload: "pflotran", Ranks: ranks})
		if err != nil {
			log.Fatal(err)
		}
		return res.Experiment.Tree
	}
	smallTree := runAt(*small)
	bigTree := runAt(*big)

	res, err := callpath.AnalyzeScaling(smallTree, bigTree, callpath.ScalingConfig{
		Metric:     "CYCLES",
		Mode:       callpath.WeakScaling,
		RanksSmall: *small,
		RanksBig:   *big,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("weak scaling %d -> %d ranks: %.1f%% of the big run's per-rank cycles are scaling loss\n\n",
		*small, *big, 100*res.LossFraction())

	fmt.Println("=== Hot path over scaling loss ===")
	for _, n := range callpath.HotPath(bigTree.Root, res.Column, callpath.DefaultHotPathThreshold) {
		if n.Kind == callpath.KindRoot {
			continue
		}
		fmt.Printf("  %-44s excess %12.4g cycles/rank\n", n.Label(), n.Incl.Get(res.Column))
	}

	cyc, err := callpath.MetricColumn(bigTree, "CYCLES")
	if err != nil {
		log.Fatal(err)
	}
	idle, err := callpath.MetricColumn(bigTree, "IDLE")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Calling Context View sorted by scaling loss ===")
	err = callpath.RenderTree(os.Stdout, bigTree, callpath.RenderOptions{
		Columns: []callpath.RenderColumn{
			{MetricID: res.Column, Inclusive: true},
			{MetricID: cyc, Inclusive: true},
			{MetricID: idle, Inclusive: true},
		},
		Sort:     callpath.SortSpec{MetricID: res.Column},
		MaxDepth: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nThe loss splits between two classic weak-scaling bottlenecks: the")
	fmt.Println("barrier wait (the uneven partition's max-mean gap widens with more")
	fmt.Println("ranks, so everyone else idles longer) and the global residual")
	fmt.Println("reduction, whose cost grows linearly with the rank count.")
}
