// Imbalance: reproduce the paper's PFLOTRAN load-imbalance study (Figure 7,
// Section VI-C). The workload runs on many SPMD ranks with an uneven
// domain partition; sorting by total idleness and running hot-path
// analysis drills into the main iteration loop, and the per-rank series at
// that context is shown as the scatter / sorted / histogram triple of
// Figure 7.
//
// Run with: go run ./examples/imbalance [-ranks 32]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/callpath"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("imbalance: ")
	ranks := flag.Int("ranks", 32, "number of SPMD ranks")
	flag.Parse()

	res, err := callpath.Run(callpath.RunConfig{
		Workload:  "pflotran",
		Ranks:     *ranks,
		Summaries: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	tree := res.Experiment.Tree
	idle, err := callpath.MetricColumn(tree, "IDLE")
	if err != nil {
		log.Fatal(err)
	}
	cycles, err := callpath.MetricColumn(tree, "CYCLES")
	if err != nil {
		log.Fatal(err)
	}

	// Step 1 (paper): sort by total inclusive idleness summed over all
	// MPI processes and run hot path analysis to find the imbalanced
	// context.
	fmt.Println("=== Hot path over total idleness (Figure 7's drill-down) ===")
	path := callpath.HotPath(tree.Root, idle, callpath.DefaultHotPathThreshold)
	var labels []string
	for _, n := range path {
		if n.Kind == callpath.KindRoot {
			continue
		}
		labels = append(labels, n.Label())
		fmt.Printf("  %-42s idleness %5.1f%%\n", n.Label(), 100*n.Incl.Get(idle)/tree.Total(idle))
	}

	// Step 2: per-rank analysis of the work at the imbalanced context.
	// (flow_solve under the time-stepping loop carries the skewed work.)
	scope := []string{"main", "stepper_run", "loop at timestepper.F90: 384", "flow_solve"}
	rep, err := res.AnalyzeImbalance(scope, "CYCLES", 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Per-rank work distribution (Figure 7's three graphs) ===")
	if err := rep.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Step 3: the summary columns let the merged view expose the same
	// story without one column per rank (Section VII).
	fmt.Println("=== Merged view with summary statistics across ranks ===")
	meanCol, _ := callpath.MetricColumn(tree, "CYCLES (mean)")
	maxCol, _ := callpath.MetricColumn(tree, "CYCLES (max)")
	err = callpath.RenderTree(os.Stdout, tree, callpath.RenderOptions{
		Columns: []callpath.RenderColumn{
			{MetricID: cycles, Inclusive: true},
			{MetricID: idle, Inclusive: true},
			{MetricID: meanCol, Inclusive: true},
			{MetricID: maxCol, Inclusive: true},
		},
		MaxDepth: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nimbalance factor (max/mean - 1) at %s: %.2f\n",
		scope[len(scope)-1], rep.ImbalanceFactor())
}
