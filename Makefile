# Verification entry points. `make verify` is the full tier-1 gate:
# build, tests, race-detector pass (the concurrency harness in
# internal/core and internal/merge is written for -race), and vet.

GO ?= go

.PHONY: verify build test race vet bench-smoke bench-merge

verify: build test race vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Run every root benchmark body once (N=1) — the rot guard.
bench-smoke:
	$(GO) test -run TestBenchSmoke .

# Regenerate the numbers recorded in BENCH_merge.json.
bench-merge:
	$(GO) test -run XXX -bench 'BenchmarkMergeRanks|BenchmarkParallelMerge' -benchtime 30x .
