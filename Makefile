# Verification entry points. `make verify` is the full tier-1 gate:
# build, tests, race-detector pass (the concurrency harness in
# internal/core and internal/merge is written for -race), and vet.

GO ?= go

# Merge + core + query benchmark selection shared by bench/benchdiff.
# ChildLookup is a nanosecond-scale operation and needs a fixed high
# iteration count — 30 iterations of a ~50ns op is pure timer noise.
# HotPath is anchored so it does not also select BenchmarkHotPathSize.
BENCHES = BenchmarkMergeRanks|BenchmarkParallelMerge|BenchmarkBuildCCT|BenchmarkReadBinary|BenchmarkDerivedEval|BenchmarkSortTree|BenchmarkHotPath$$|BenchmarkComputeMetrics|BenchmarkLazyOpen|BenchmarkConcurrentSessions|BenchmarkMappedOpen|BenchmarkColdFirstQuery|BenchmarkCatalogSessions|BenchmarkTraceView|BenchmarkTraceCapture|BenchmarkImportPprof|BenchmarkReport$$
BENCH_CMD = $(GO) test -run XXX -bench '$(BENCHES)' -benchtime 30x -benchmem . \
	&& $(GO) test -run XXX -bench BenchmarkChildLookup -benchtime 2000000x -benchmem . \
	&& $(GO) test -run XXX -bench 'BenchmarkDiffUnion|BenchmarkDiffKernels' -benchtime 5x -benchmem .

# Packages whose fuzz targets run their seed corpora in CI and `make
# faults`. This list is the single source of truth: CI's "Fuzz seeds" step
# calls `make fuzz-seeds`, so adding a fuzz target means adding its package
# here once.
FUZZ_PKGS = ./internal/diff ./internal/expdb ./internal/profile ./internal/structfile ./internal/metric ./internal/pprofio

.PHONY: verify build test race vet lint bench benchdiff bench-smoke bench-merge bench-diff bench-trace faults fuzz-seeds chaos

verify: build test race vet lint bench-smoke faults chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Both tools run in CI unconditionally; locally
# each is skipped (with a note) when not on PATH — the container image does
# not bake them in and the build must not fetch dependencies.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (CI runs it)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed; skipping (CI runs it)"; \
	fi

# Merge + core + query + engine + diff benchmarks with allocation stats —
# the numbers recorded in BENCH_merge.json, BENCH_core.json,
# BENCH_query.json, BENCH_engine.json and BENCH_diff.json. The
# million-scope diff benches run at 5x: one union iteration is ~3s.
bench:
	@$(BENCH_CMD)

# Same run, compared against the committed baselines. Allocation counts are
# deterministic and fail the diff when they regress; ns/op is reported but
# only fails beyond 50% (single-CPU container timing is noisy).
benchdiff:
	@( $(BENCH_CMD) ) | $(GO) run ./cmd/benchdiff -max-regress 0.5 BENCH_merge.json BENCH_core.json BENCH_query.json BENCH_engine.json BENCH_diff.json BENCH_open.json BENCH_catalog.json BENCH_trace.json BENCH_report.json

# Run every root benchmark body once (N=1) — the rot guard behind verify.
bench-smoke:
	$(GO) test -run TestBenchSmoke .

# Regenerate the numbers recorded in BENCH_merge.json.
bench-merge:
	$(GO) test -run XXX -bench 'BenchmarkMergeRanks|BenchmarkParallelMerge' -benchtime 30x .

# Regenerate the numbers recorded in BENCH_diff.json.
bench-diff:
	$(GO) test -run XXX -bench 'BenchmarkDiffUnion|BenchmarkDiffKernels' -benchtime 5x -benchmem .

# Regenerate the numbers recorded in BENCH_trace.json.
bench-trace:
	$(GO) test -run XXX -bench 'BenchmarkTraceView|BenchmarkTraceCapture' -benchtime 30x -benchmem .

# Every fuzz target's checked-in seed corpus, run as plain tests.
fuzz-seeds:
	$(GO) test -run Fuzz $(FUZZ_PKGS)

# Robustness gate: the fault-injection matrix (every workload's files, both
# format versions, truncation + corruption sweeps), every seed corpus, plus
# a short coverage-guided fuzz of the binary readers and the pprof importer.
faults:
	$(GO) test -run 'TestFaultMatrix|TestReaderFaults' ./internal/faultio
	$(MAKE) fuzz-seeds
	$(GO) test -run XXX -fuzz 'FuzzRead$$' -fuzztime 10s ./internal/profile
	$(GO) test -run XXX -fuzz FuzzReadBinary -fuzztime 10s ./internal/expdb
	$(GO) test -run XXX -fuzz FuzzReadV3 -fuzztime 10s ./internal/expdb
	$(GO) test -run XXX -fuzz FuzzReadTrace -fuzztime 10s ./internal/expdb
	$(GO) test -run XXX -fuzz FuzzDiff -fuzztime 10s ./internal/diff
	$(GO) test -run XXX -fuzz FuzzImportPprof -fuzztime 10s ./internal/pprofio

# Live-serving chaos gate, always under -race: catalog lifecycle races
# (evict/republish/rot under concurrent query load) and HTTP-layer fault
# injection (panics, stalls, request floods) against a serving process.
chaos:
	$(GO) test -race -run 'TestChaos' -count=1 ./internal/catalog ./internal/server
