// Package repro's root benchmark harness: one benchmark per paper artifact
// (Figures 2–7 and the quantitative claims of Sections I and VII), plus
// ablation benches for the design choices called out in DESIGN.md §6.
// Regenerate everything with:
//
//	go test -bench=. -benchmem .
package repro

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/correlate"
	"repro/internal/expdb"
	"repro/internal/imbalance"
	"repro/internal/lower"
	"repro/internal/merge"
	"repro/internal/metric"
	"repro/internal/mpi"
	"repro/internal/profile"
	"repro/internal/render"
	"repro/internal/sampler"
	"repro/internal/sim"
	"repro/internal/structfile"
	"repro/internal/viewer"
	"repro/internal/workloads"
)

// --- shared fixtures -------------------------------------------------------

func mustSeqTree(b testing.TB, name string) *core.Tree {
	b.Helper()
	spec, err := workloads.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		b.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sampler.New(spec.Name, 0, 0, sampler.DefaultEvents(spec.Period))
	if err != nil {
		b.Fatal(err)
	}
	vm, err := sim.New(im, sim.Config{Observer: s})
	if err != nil {
		b.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		b.Fatal(err)
	}
	tree, err := correlate.Correlate(doc, s.Profile())
	if err != nil {
		b.Fatal(err)
	}
	return tree
}

func mustMPIProfiles(b testing.TB, name string, ranks int) (*structfile.Doc, []*profile.Profile) {
	b.Helper()
	spec, err := workloads.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		b.Fatal(err)
	}
	doc, err := structfile.Recover(im)
	if err != nil {
		b.Fatal(err)
	}
	profs, err := mpi.Run(im, mpi.Config{NRanks: ranks, Params: spec.Params,
		Events: sampler.DefaultEvents(spec.Period)})
	if err != nil {
		b.Fatal(err)
	}
	return doc, profs
}

// syntheticCCT builds a CCT with about n scopes, with recursion, loops and
// a realistic branching factor, for the scalability benches (E-SCALE-*).
func syntheticCCT(n int, seed int64) *core.Tree {
	rng := rand.New(rand.NewSource(seed))
	reg := metric.NewRegistry()
	if _, err := reg.AddRaw("CYCLES", "cycles", 1); err != nil {
		panic(err)
	}
	t := core.NewTree("synth", reg)
	procs := make([]string, 40)
	for i := range procs {
		procs[i] = fmt.Sprintf("proc%02d", i)
	}
	cur := t.Root.Child(core.Key{Kind: core.KindFrame, Name: core.Sym("main"), File: core.Sym("main.c")}, true)
	stack := []*core.Node{cur}
	// addChild tracks the node count incrementally; Child() may return an
	// existing scope, which must not count twice.
	created := 1
	addChild := func(parent *core.Node, k core.Key) *core.Node {
		before := len(parent.Children)
		c := parent.Child(k, true)
		if len(parent.Children) != before {
			created++
		}
		return c
	}
	for created < n {
		op := rng.Intn(6)
		if len(stack) > 30 {
			op = 5 // keep call chains at realistic depths
		}
		switch op {
		case 0, 1:
			name := procs[rng.Intn(len(procs))]
			fr := addChild(stack[len(stack)-1], core.Key{
				Kind: core.KindFrame, Name: core.Sym(name), File: core.Sym(name + ".c"),
				ID: uint64(rng.Intn(8)),
			})
			fr.CallLine = rng.Intn(200) + 1
			fr.CallFile = core.Sym("x.c")
			stack = append(stack, fr)
		case 2:
			l := addChild(stack[len(stack)-1], core.Key{Kind: core.KindLoop, File: core.Sym("x.c"), Line: rng.Intn(300) + 1})
			stack = append(stack, l)
		case 3, 4:
			s := addChild(stack[len(stack)-1], core.Key{Kind: core.KindStmt, File: core.Sym("x.c"), Line: rng.Intn(500) + 1})
			s.Base.Add(0, float64(rng.Intn(100)+1))
		case 5:
			if len(stack) > 1 {
				stack = stack[:len(stack)-1]
			}
		}
	}
	t.ComputeMetrics()
	return t
}

// --- E-FIG2: the worked example's three views -------------------------------

func BenchmarkFig2Views(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := core.Fig1Tree()
		cv := core.BuildCallersView(t)
		cv.ExpandAll()
		fv := core.BuildFlatView(t)
		if len(cv.Roots) != 4 || len(fv.Roots) != 1 {
			b.Fatal("figure 2 views wrong")
		}
	}
}

// --- E-FIG3: hot path analysis on the S3D profile ---------------------------

func BenchmarkFig3HotPath(b *testing.B) {
	tree := mustSeqTree(b, "s3d")
	cyc := tree.Reg.ByName("CYCLES").ID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.HotPath(tree.Root, cyc, 0.5)
		if len(p) < 5 {
			b.Fatal("hot path too short")
		}
	}
}

// BenchmarkFig3Pipeline measures the whole Figure 3 reproduction: simulate,
// sample, recover structure, correlate.
func BenchmarkFig3Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tree := mustSeqTree(b, "s3d")
		if tree.NumNodes() == 0 {
			b.Fatal("empty tree")
		}
	}
}

// --- E-FIG4: Callers View construction on the MOAB profile ------------------

func BenchmarkFig4CallersView(b *testing.B) {
	tree := mustSeqTree(b, "moab")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cv := core.BuildCallersView(tree)
		cv.ExpandAll()
		if len(cv.Roots) == 0 {
			b.Fatal("no roots")
		}
	}
}

// --- E-FIG5: Flat View with inlined scopes -----------------------------------

func BenchmarkFig5FlatView(b *testing.B) {
	tree := mustSeqTree(b, "moab")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fv := core.BuildFlatView(tree)
		if len(fv.Roots) == 0 {
			b.Fatal("no modules")
		}
	}
}

// --- E-FIG6: derived metric definition and evaluation ------------------------

func BenchmarkFig6DerivedMetrics(b *testing.B) {
	tree := mustSeqTree(b, "s3d")
	if _, err := tree.Reg.AddDerived("fpwaste", "$0*4 - $1"); err != nil {
		b.Fatal(err)
	}
	if _, err := tree.Reg.AddDerived("releff", "$1 / ($0*4)"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.ApplyDerivedTree(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E-FIG7: load-imbalance analysis -----------------------------------------

func BenchmarkFig7ImbalanceAnalysis(b *testing.B) {
	doc, profs := mustMPIProfiles(b, "pflotran", 16)
	path := []string{"main", "stepper_run", "loop at timestepper.F90: 384", "flow_solve"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := imbalance.Analyze(doc, profs, path, "CYCLES", 10)
		if err != nil {
			b.Fatal(err)
		}
		if rep.ImbalanceFactor() <= 0 {
			b.Fatal("no imbalance")
		}
	}
}

// --- E-OVH: sampling overhead (Section I's "few percent") --------------------

// nopObserver models free-running hardware counters (counting costs the
// application nothing extra); the profiler's own overhead is the
// difference between the sampled runs and this baseline.
type nopObserver struct{}

func (nopObserver) OnCost(*sim.VM, int32, *sim.Counters) {}

func benchVM(b *testing.B, mk func() (sim.Observer, error)) {
	spec, err := workloads.ByName("s3d")
	if err != nil {
		b.Fatal(err)
	}
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var cfg sim.Config
		if mk != nil {
			obs, err := mk()
			if err != nil {
				b.Fatal(err)
			}
			cfg.Observer = obs
		}
		vm, err := sim.New(im, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := vm.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSamplingOverhead(b *testing.B) {
	cyclesAt := func(period uint64) func() (sim.Observer, error) {
		return func() (sim.Observer, error) {
			return sampler.New("s3d", 0, 0, []sampler.EventConfig{{Event: sim.EvCycles, Period: period}})
		}
	}
	b.Run("no-observer", func(b *testing.B) { benchVM(b, nil) })
	b.Run("counting-hardware", func(b *testing.B) {
		benchVM(b, func() (sim.Observer, error) { return nopObserver{}, nil })
	})
	b.Run("cycles-period=1k", func(b *testing.B) { benchVM(b, cyclesAt(1000)) })
	b.Run("cycles-period=10k", func(b *testing.B) { benchVM(b, cyclesAt(10_000)) })
	b.Run("cycles-period=100k", func(b *testing.B) { benchVM(b, cyclesAt(100_000)) })
	b.Run("all-events-period=1k", func(b *testing.B) {
		benchVM(b, func() (sim.Observer, error) {
			return sampler.New("s3d", 0, 0, sampler.DefaultEvents(1000))
		})
	})
}

// --- E-SCALE-CCT: view construction and metric computation vs tree size ------

var cctSizes = []int{1_000, 10_000, 100_000}

func BenchmarkCCTConstructionSize(b *testing.B) {
	for _, n := range cctSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t := syntheticCCT(n, 42)
				if t.NumNodes() < n {
					b.Fatal("tree too small")
				}
			}
		})
	}
}

func BenchmarkMetricComputationSize(b *testing.B) {
	for _, n := range cctSizes {
		t := syntheticCCT(n, 42)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t.ComputeMetrics()
			}
		})
	}
}

func BenchmarkCallersViewSize(b *testing.B) {
	for _, n := range cctSizes {
		t := syntheticCCT(n, 42)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cv := core.BuildCallersView(t)
				cv.ExpandAll()
			}
		})
	}
}

func BenchmarkFlatViewSize(b *testing.B) {
	for _, n := range cctSizes {
		t := syntheticCCT(n, 42)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.BuildFlatView(t)
			}
		})
	}
}

func BenchmarkHotPathSize(b *testing.B) {
	for _, n := range cctSizes {
		t := syntheticCCT(n, 42)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.HotPath(t.Root, 0, 0.5)
			}
		})
	}
}

// --- E-SCALE-LAZY: lazy vs eager Callers View (Section VII) ------------------

func BenchmarkLazyVsEagerCallers(b *testing.B) {
	t := syntheticCCT(100_000, 7)
	b.Run("lazy-roots-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.BuildCallersView(t)
		}
	})
	b.Run("lazy-expand-one", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cv := core.BuildCallersView(t)
			cv.Expand(cv.Roots[0])
		}
	})
	b.Run("eager-expand-all", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cv := core.BuildCallersView(t)
			cv.ExpandAll()
		}
	})
}

// --- Ablation: exposed-instance aggregation vs naive summing -----------------

func BenchmarkExposedVsNaive(b *testing.B) {
	t := syntheticCCT(100_000, 11)
	b.Run("exposed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.BuildCallersView(t)
		}
	})
	b.Run("naive-overcounting", func(b *testing.B) {
		// The incorrect baseline: sum every instance with no exposure
		// check (faster, but overcounts recursion — Section IV-B).
		for i := 0; i < b.N; i++ {
			sums := map[string]float64{}
			core.Walk(t.Root, func(n *core.Node) bool {
				if n.Kind == core.KindFrame {
					sums[n.Name.String()] += n.Incl.Get(0)
				}
				return true
			})
		}
	})
}

// --- E-SCALE-MERGE: multi-rank merge with summary statistics -----------------

func BenchmarkMergeRanks(b *testing.B) {
	for _, ranks := range []int{4, 16, 64} {
		doc, profs := mustMPIProfiles(b, "pflotran", ranks)
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := merge.Profiles(doc, profs)
				if err != nil {
					b.Fatal(err)
				}
				if err := res.AddSummaries(0, metric.OpMean, metric.OpMin, metric.OpMax, metric.OpStdDev); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelMerge measures the shard/reduce merge pipeline on a
// 64-rank workload at 1/2/4/8 workers; jobs=1 is the sequential baseline
// the equivalence harness (internal/merge) pins the others to.
func BenchmarkParallelMerge(b *testing.B) {
	doc, profs := mustMPIProfiles(b, "pflotran", 64)
	for _, jobs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := merge.ProfilesJobs(doc, profs, jobs)
				if err != nil {
					b.Fatal(err)
				}
				if res.NRanks != 64 {
					b.Fatal("wrong rank count")
				}
			}
		})
	}
}

// --- E-FMT: XML vs compact binary database (Section IX) ----------------------

func dbFixture(b *testing.B) *expdb.Experiment {
	b.Helper()
	return expdb.New(mustSeqTree(b, "moab"))
}

func BenchmarkDBEncodeXML(b *testing.B) {
	e := dbFixture(b)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := e.WriteXML(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(buf.Len()), "bytes")
}

func BenchmarkDBEncodeBinary(b *testing.B) {
	e := dbFixture(b)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := e.WriteBinary(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(buf.Len()), "bytes")
}

func BenchmarkDBDecodeXML(b *testing.B) {
	e := dbFixture(b)
	var buf bytes.Buffer
	if err := e.WriteXML(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expdb.ReadXML(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDBDecodeBinary(b *testing.B) {
	e := dbFixture(b)
	var buf bytes.Buffer
	if err := e.WriteBinary(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expdb.ReadBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E-RENDER: tree-tabular rendering (Section VII) --------------------------

func BenchmarkRenderViews(b *testing.B) {
	t := syntheticCCT(10_000, 3)
	b.Run("cct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := render.RenderTree(io.Discard, t, render.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cct-top5-depth6", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := render.RenderTree(io.Discard, t, render.Options{TopN: 5, MaxDepth: 6}); err != nil {
				b.Fatal(err)
			}
		}
	})
	fv := core.BuildFlatView(t)
	b.Run("flat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := render.RenderFlat(io.Discard, fv, t, render.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation: sparse vs dense metric storage --------------------------------

func BenchmarkSparseVsDenseMetrics(b *testing.B) {
	// 10k scopes × 16 columns with only 2 populated: the sparse Vector
	// against a dense slice representation.
	const scopes, cols = 10_000, 16
	b.Run("sparse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			vs := make([]metric.Vector, scopes)
			for j := range vs {
				vs[j].Add(0, float64(j))
				vs[j].Add(7, float64(j))
			}
			var sum float64
			for j := range vs {
				sum += vs[j].Get(0) + vs[j].Get(7)
			}
			_ = sum
		}
	})
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			vs := make([][]float64, scopes)
			for j := range vs {
				vs[j] = make([]float64, cols)
				vs[j][0] = float64(j)
				vs[j][7] = float64(j)
			}
			var sum float64
			for j := range vs {
				sum += vs[j][0] + vs[j][7]
			}
			_ = sum
		}
	})
}

// --- HTML export and interactive session --------------------------------------

func BenchmarkRenderHTMLReport(b *testing.B) {
	t := syntheticCCT(10_000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := render.RenderHTMLReport(io.Discard, t, "synth", 0, render.Options{TopN: 10, MaxDepth: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSessionVisibleRows(b *testing.B) {
	t := syntheticCCT(100_000, 5)
	s := viewer.New(t, nil)
	s.HotPath(0) // expand a realistic working set
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.VisibleRows()) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkImageFingerprint(b *testing.B) {
	spec, err := workloads.ByName("s3d")
	if err != nil {
		b.Fatal(err)
	}
	im, err := lower.Lower(spec.Program, spec.LowerOpts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if im.Fingerprint() == 0 {
			b.Fatal("zero fingerprint")
		}
	}
}

// --- Formula engine ----------------------------------------------------------

func BenchmarkFormulaEval(b *testing.B) {
	e := metric.MustParse("$0*4 - $1 + min($2, $0/2)")
	env := metric.EnvFunc(func(id int) float64 { return float64(id + 1) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := e.Eval(env)
		if err != nil {
			b.Fatal(err)
		}
		if v == 0 {
			b.Fatal("unexpected zero")
		}
	}
}
