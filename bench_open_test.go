package repro

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/engine"
	"repro/internal/expdb"
)

// Open-path benchmarks for the v3 zero-copy layout: opening a database
// from disk and answering the first query from cold. The v2 stream open
// must decode the whole tree section — O(file) — before the first scope is
// visible; the mapped v3 open parses the fixed-width section index and
// nothing else — O(index) — and faults column slabs in on first touch.
// Baseline numbers live in BENCH_open.json.

// openBenchFiles serializes the 100k-scope synthetic CCT in both formats
// into a temp dir and returns the two paths. The tree is fixed-seed, so
// both files — and the open-path allocation counts — are deterministic.
func openBenchFiles(b *testing.B) (v2path, v3path string) {
	b.Helper()
	e := expdb.New(syntheticCCT(100_000, 13))
	dir := b.TempDir()
	v2path = filepath.Join(dir, "synth.v2.db")
	v3path = filepath.Join(dir, "synth.v3.db")
	for _, f := range []struct {
		path  string
		write func(*bytes.Buffer) error
	}{
		{v2path, func(buf *bytes.Buffer) error { return e.WriteBinary(buf) }},
		{v3path, func(buf *bytes.Buffer) error { return e.WriteBinaryV3(buf) }},
	} {
		var buf bytes.Buffer
		if err := f.write(&buf); err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(f.path, buf.Bytes(), 0o644); err != nil {
			b.Fatal(err)
		}
	}
	return v2path, v3path
}

// BenchmarkMappedOpen measures the O(index) open: map the file, parse the
// trailer and section index, and return — no tree decode, no column reads.
func BenchmarkMappedOpen(b *testing.B) {
	_, v3path := openBenchFiles(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db, err := expdb.OpenMapped(v3path)
		if err != nil {
			b.Fatal(err)
		}
		if err := db.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLazyOpenSynthetic is the v2 baseline on the same database:
// read the file and open it lazily. The lazy open already skips the
// overrides and provenance sections, but the tree section — base values
// inline — must still be decoded scope by scope.
func BenchmarkLazyOpenSynthetic(b *testing.B) {
	v2path, _ := openBenchFiles(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := os.ReadFile(v2path)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := expdb.OpenLazy(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// coldQuery opens a session over the snapshot, runs the paper's hot path
// analysis — the canonical "first question" a user asks — and closes.
func coldQuery(b *testing.B, snap *engine.Snapshot) {
	s := engine.NewSession(snap)
	if resp := s.Do(engine.Request{Line: "hot CYCLES"}); resp.Err != "" || resp.Output == "" {
		s.Close()
		b.Fatalf("hot CYCLES: %q err=%s", resp.Output, resp.Err)
	}
	s.Close()
}

// BenchmarkColdFirstQueryMapped measures time-to-first-answer on the
// mapped path: open, decode metadata, fault in the queried column slabs
// (checksummed on first touch), run the hot path, release the mapping.
func BenchmarkColdFirstQueryMapped(b *testing.B) {
	_, v3path := openBenchFiles(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		snap, err := engine.Open(v3path)
		if err != nil {
			b.Fatal(err)
		}
		coldQuery(b, snap)
		if err := snap.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdFirstQueryLazy is the v2 time-to-first-answer baseline over
// the same synthetic database.
func BenchmarkColdFirstQueryLazy(b *testing.B) {
	v2path, _ := openBenchFiles(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := os.ReadFile(v2path)
		if err != nil {
			b.Fatal(err)
		}
		db, err := expdb.OpenLazy(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		coldQuery(b, engine.NewLazySnapshot(db))
	}
}
