package repro

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/render"
)

// BenchmarkConcurrentSessions measures the presentation engine's many-users,
// one-database scaling: N sessions share one immutable snapshot of a
// 20k-scope CCT and each runs a realistic interaction — register a private
// derived metric, hot-path drill-down, sort by the derived column, render.
// The sub-benchmarks (sessions=1/8/32) bound the cost of the snapshot's
// read-lock discipline and the per-session overlay under contention;
// ns/op is the wall time for ALL sessions of one round to finish. Baseline
// numbers live in BENCH_engine.json.
func BenchmarkConcurrentSessions(b *testing.B) {
	tree := syntheticCCT(20_000, 11)
	snap := engine.NewTreeSnapshot(tree)
	workload := func() error {
		s := engine.NewSession(snap)
		defer s.Close()
		if err := s.AddDerivedMetric("w", "$0*4 - $0/2"); err != nil {
			return err
		}
		if len(s.HotPath(0)) == 0 {
			return fmt.Errorf("empty hot path")
		}
		d := s.Registry().ByName("w")
		s.SetSort(core.SortSpec{MetricID: d.ID})
		if len(s.VisibleRows()) == 0 {
			return fmt.Errorf("no rows")
		}
		return s.Render(io.Discard, render.Options{})
	}
	for _, sessions := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				errs := make([]error, sessions)
				for j := 0; j < sessions; j++ {
					wg.Add(1)
					go func(j int) {
						defer wg.Done()
						errs[j] = workload()
					}(j)
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
