package repro

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/expdb"
)

// Core-representation benchmarks (E-CORE): the in-memory CCT hot paths the
// symbol-interned core targets — tree construction (Child miss + node
// allocation), binary database load, and child lookup (Child hit). Baseline
// numbers before and after interning live in BENCH_core.json.

// BenchmarkBuildCCT measures constructing a ~50k-scope synthetic CCT plus
// the Equation 1/2 metric computation: the CCT-build hot path of hpcprof.
func BenchmarkBuildCCT(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := syntheticCCT(50_000, 42)
		if t.NumNodes() < 50_000 {
			b.Fatal("tree too small")
		}
	}
}

// BenchmarkReadBinary measures loading the compact binary database of the
// MOAB workload: string table, node keys, and base vectors.
func BenchmarkReadBinary(b *testing.B) {
	e := expdb.New(mustSeqTreeB(b, "moab"))
	var buf bytes.Buffer
	if err := e.WriteBinary(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expdb.ReadBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChildLookup measures Node.Child hit lookups over every
// (parent, key) edge of a 20k-scope tree — the operation every sample
// attribution and every merge walk performs once per scope.
func BenchmarkChildLookup(b *testing.B) {
	t := syntheticCCT(20_000, 7)
	type edge struct {
		parent *core.Node
		key    core.Key
	}
	var edges []edge
	core.Walk(t.Root, func(n *core.Node) bool {
		if n.Kind != core.KindRoot {
			edges = append(edges, edge{parent: n.Parent, key: n.Key})
		}
		return true
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := &edges[i%len(edges)]
		if e.parent.Child(e.key, false) == nil {
			b.Fatal("lookup miss")
		}
	}
}

// mustSeqTreeB aliases mustSeqTree for the core benches (kept separate so
// the fixture name used by BENCH_core.json stays greppable).
func mustSeqTreeB(b *testing.B, name string) *core.Tree { return mustSeqTree(b, name) }
