// Benchmarks for the differential profiling engine: the structural union
// of two large CCTs and the steady-state comparison kernels. Baseline
// numbers live in BENCH_diff.json; the kernels' zero-allocation steady
// state is pinned by TestDiffKernelAllocs.
package repro

import (
	"sync"
	"testing"

	"repro/internal/diff"
	"repro/internal/expdb"
)

// diffBenchPair lazily builds two ~500k-scope synthetic experiments with
// different seeds — their union approaches a million scopes, the paper's
// large-database regime — at rank counts that auto-select weak scaling,
// so the loss kernel runs too.
var (
	diffBenchOnce sync.Once
	diffBenchA    *expdb.Experiment
	diffBenchB    *expdb.Experiment
)

func diffBenchPair() (*expdb.Experiment, *expdb.Experiment) {
	diffBenchOnce.Do(func() {
		mk := func(seed int64, ranks int) *expdb.Experiment {
			tr := syntheticCCT(500_000, seed)
			tr.ComputeMetrics()
			e := expdb.New(tr)
			e.NRanks = ranks
			return e
		}
		diffBenchA = mk(1, 4)
		diffBenchB = mk(2, 16)
	})
	return diffBenchA, diffBenchB
}

// BenchmarkDiffUnion measures the whole differential pipeline per
// iteration: structural union of the two trees, per-input column fill,
// metric recomputation and the comparison kernels (D-SCALE-1).
func BenchmarkDiffUnion(b *testing.B) {
	ea, eb := diffBenchPair()
	b.ReportAllocs()
	b.ResetTimer()
	var scopes int
	for i := 0; i < b.N; i++ {
		res, err := diff.Diff(diff.Config{Jobs: 1},
			diff.Input{Label: "A", Exp: ea}, diff.Input{Label: "B", Exp: eb})
		if err != nil {
			b.Fatal(err)
		}
		scopes = res.Tree.NumNodes()
	}
	b.ReportMetric(float64(scopes), "scopes")
}

// BenchmarkDiffKernels measures the steady-state delta/ratio/loss/presence
// recomputation over the built union — the cost of refreshing a diff after
// the presented metrics are recomputed (D-SCALE-2). Allocates nothing.
func BenchmarkDiffKernels(b *testing.B) {
	ea, eb := diffBenchPair()
	res, err := diff.Diff(diff.Config{Jobs: 1},
		diff.Input{Label: "A", Exp: ea}, diff.Input{Label: "B", Exp: eb})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.Recompute()
	}
}

// TestDiffKernelAllocs pins the kernels' steady state at zero allocations
// per Recompute — the contract behind BenchmarkDiffKernels' allocs/op
// column in BENCH_diff.json.
func TestDiffKernelAllocs(t *testing.T) {
	ea, eb := diffBenchPair()
	res, err := diff.Diff(diff.Config{Jobs: 1},
		diff.Input{Label: "A", Exp: ea}, diff.Input{Label: "B", Exp: eb})
	if err != nil {
		t.Fatal(err)
	}
	res.Recompute() // materialize every slab once
	if allocs := testing.AllocsPerRun(5, res.Recompute); allocs != 0 {
		t.Fatalf("Recompute allocates %v objects per run in steady state, want 0", allocs)
	}
}
