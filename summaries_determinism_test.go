package repro

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/expdb"
	"repro/internal/merge"
	"repro/internal/metric"
)

// summariesDBBytes runs the hpcprof -summaries pipeline — parallel merge
// with the given worker count, then mean/min/max/stddev summary columns on
// every raw metric — and serializes the experiment, returning the exact
// database bytes.
func summariesDBBytes(t *testing.T, name string, ranks, jobs int, write func(*expdb.Experiment, *bytes.Buffer) error) []byte {
	t.Helper()
	doc, profs := mustMPIProfiles(t, name, ranks)
	res, err := merge.ProfilesJobs(doc, profs, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Tree.Reg.Columns() {
		if d.Kind != metric.Raw {
			continue
		}
		if err := res.AddSummaries(d.ID, metric.OpMean, metric.OpMin, metric.OpMax, metric.OpStdDev); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := write(expdb.FromMerge(res), &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSummariesByteDeterministic locks hpcprof -summaries to byte-identical
// databases regardless of -jobs, at 64 ranks where shard merge orders
// genuinely differ. This holds because per-rank statistics keep exact
// moments (N, Σx, Σx², min, max): merging shard statistics is pure
// addition of integer-valued sums, which is associative bitwise at
// workload scale, where Welford's running-mean combine was not. The check
// covers every serialized bit — including the stddev overrides in v2 and
// the baked stddev column slabs in v3 — not just rendered text.
func TestSummariesByteDeterministic(t *testing.T) {
	formats := []struct {
		name  string
		write func(*expdb.Experiment, *bytes.Buffer) error
	}{
		{"v2", func(e *expdb.Experiment, b *bytes.Buffer) error { return e.WriteBinary(b) }},
		{"v3", func(e *expdb.Experiment, b *bytes.Buffer) error { return e.WriteBinaryV3(b) }},
	}
	for _, f := range formats {
		for _, jobs := range []int{2, 8} {
			t.Run(fmt.Sprintf("%s/jobs=%d", f.name, jobs), func(t *testing.T) {
				sequential := summariesDBBytes(t, "pflotran", 64, 1, f.write)
				parallel := summariesDBBytes(t, "pflotran", 64, jobs, f.write)
				if !bytes.Equal(sequential, parallel) {
					i := 0
					for i < len(sequential) && i < len(parallel) && sequential[i] == parallel[i] {
						i++
					}
					t.Fatalf("-jobs 1 and -jobs %d databases differ (first at byte %d of %d/%d)",
						jobs, i, len(sequential), len(parallel))
				}
			})
		}
	}
}
