// Equivalence tests for the v3 zero-copy storage layout (DESIGN.md §13).
// Mapping column slabs straight out of the file is performance work only:
// every view a session renders must be byte-identical no matter which open
// path produced the snapshot — the eager v2 decode, the lazy v2 open with
// on-demand fault-in, or the mapped v3 open reading float64 slabs in
// place.
package repro

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/expdb"
	"repro/internal/render"
	"repro/internal/workloads"
)

// renderViews drives one fresh session per view over the snapshot and
// returns the concatenated renders: fully expanded Calling Context,
// fully expanded Callers, once-flattened Flat, plus a hot path and an
// exclusive sort for coverage of the order-sensitive paths.
func renderViews(t *testing.T, snap *engine.Snapshot) string {
	t.Helper()
	scripts := [][]string{
		{"expandall", "hot CYCLES"},
		{"view callers", "expandall", "sort CYCLES"},
		{"view flat", "flatten", "sort CYCLES:excl"},
	}
	var out strings.Builder
	for _, script := range scripts {
		s := engine.NewSession(snap)
		for _, line := range script {
			if resp := s.Do(engine.Request{Line: line}); resp.Err != "" {
				s.Close()
				t.Fatalf("%q: %s", line, resp.Err)
			}
		}
		fmt.Fprintf(&out, "=== %s ===\n", script[0])
		if err := s.Render(&out, render.Options{}); err != nil {
			s.Close()
			t.Fatal(err)
		}
		s.Close()
	}
	return out.String()
}

// TestV3OpenPathEquivalence runs every workload × {1, 7, 64} ranks through
// the three open paths and demands byte-identical renders of all three
// views. This is the contract that lets hpcviewer/hpcserver switch to
// mapped v3 databases without a visible change.
func TestV3OpenPathEquivalence(t *testing.T) {
	dir := t.TempDir()
	for _, name := range workloads.Names() {
		for _, ranks := range []int{1, 7, 64} {
			t.Run(fmt.Sprintf("%s/ranks=%d", name, ranks), func(t *testing.T) {
				exp := equivExperiment(t, name, ranks)

				var v2buf, v3buf bytes.Buffer
				if err := exp.WriteBinary(&v2buf); err != nil {
					t.Fatal(err)
				}
				if err := exp.WriteBinaryV3(&v3buf); err != nil {
					t.Fatal(err)
				}
				v3path := filepath.Join(dir, fmt.Sprintf("%s-%d.db", name, ranks))
				if err := os.WriteFile(v3path, v3buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}

				eagerExp, err := expdb.Read(bytes.NewReader(v2buf.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				eager := renderViews(t, engine.NewSnapshot(eagerExp))

				ldb, err := expdb.OpenLazy(bytes.NewReader(v2buf.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				lazy := renderViews(t, engine.NewLazySnapshot(ldb))

				mdb, err := expdb.OpenMapped(v3path)
				if err != nil {
					t.Fatal(err)
				}
				msnap, err := engine.NewMappedSnapshot(mdb)
				if err != nil {
					t.Fatal(err)
				}
				mapped := renderViews(t, msnap)
				if err := msnap.Close(); err != nil {
					t.Fatal(err)
				}

				if eager != lazy {
					t.Errorf("lazy v2 render differs from eager v2:\n%s", firstDiff(eager, lazy))
				}
				if eager != mapped {
					t.Errorf("mapped v3 render differs from eager v2:\n%s", firstDiff(eager, mapped))
				}
			})
		}
	}
}

func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  a: %s\n  b: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}
