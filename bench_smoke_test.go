package repro

import (
	"flag"
	"testing"
)

// TestBenchSmoke executes every root benchmark body once (N=1, via
// -test.benchtime=1x) so a benchmark that rots — a renamed fixture, a
// changed API, a b.Fatal path — fails ordinary `go test` instead of lying
// dormant until someone runs -bench. Baseline numbers for the merge benches
// live in BENCH_merge.json; for the core-representation benches, in
// BENCH_core.json; for the differential-profiling benches, in
// BENCH_diff.json.
func TestBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke is not short")
	}
	prev := flag.Lookup("test.benchtime").Value.String()
	if err := flag.Set("test.benchtime", "1x"); err != nil {
		t.Fatal(err)
	}
	defer flag.Set("test.benchtime", prev)

	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"Fig2Views", BenchmarkFig2Views},
		{"Fig3HotPath", BenchmarkFig3HotPath},
		{"Fig3Pipeline", BenchmarkFig3Pipeline},
		{"Fig4CallersView", BenchmarkFig4CallersView},
		{"Fig5FlatView", BenchmarkFig5FlatView},
		{"Fig6DerivedMetrics", BenchmarkFig6DerivedMetrics},
		{"Fig7ImbalanceAnalysis", BenchmarkFig7ImbalanceAnalysis},
		{"SamplingOverhead", BenchmarkSamplingOverhead},
		{"CCTConstructionSize", BenchmarkCCTConstructionSize},
		{"MetricComputationSize", BenchmarkMetricComputationSize},
		{"CallersViewSize", BenchmarkCallersViewSize},
		{"FlatViewSize", BenchmarkFlatViewSize},
		{"HotPathSize", BenchmarkHotPathSize},
		{"LazyVsEagerCallers", BenchmarkLazyVsEagerCallers},
		{"ExposedVsNaive", BenchmarkExposedVsNaive},
		{"ParallelMerge", BenchmarkParallelMerge},
		{"MergeRanks", BenchmarkMergeRanks},
		{"DBEncodeXML", BenchmarkDBEncodeXML},
		{"DBEncodeBinary", BenchmarkDBEncodeBinary},
		{"DBDecodeXML", BenchmarkDBDecodeXML},
		{"DBDecodeBinary", BenchmarkDBDecodeBinary},
		{"RenderViews", BenchmarkRenderViews},
		{"SparseVsDenseMetrics", BenchmarkSparseVsDenseMetrics},
		{"RenderHTMLReport", BenchmarkRenderHTMLReport},
		{"SessionVisibleRows", BenchmarkSessionVisibleRows},
		{"ImageFingerprint", BenchmarkImageFingerprint},
		{"FormulaEval", BenchmarkFormulaEval},
		{"BuildCCT", BenchmarkBuildCCT},
		{"ReadBinary", BenchmarkReadBinary},
		{"ChildLookup", BenchmarkChildLookup},
		{"DerivedEval", BenchmarkDerivedEval},
		{"SortTree", BenchmarkSortTree},
		{"HotPath", BenchmarkHotPath},
		{"ComputeMetrics", BenchmarkComputeMetrics},
		{"LazyOpen", BenchmarkLazyOpen},
		{"MappedOpen", BenchmarkMappedOpen},
		{"LazyOpenSynthetic", BenchmarkLazyOpenSynthetic},
		{"ColdFirstQueryMapped", BenchmarkColdFirstQueryMapped},
		{"ColdFirstQueryLazy", BenchmarkColdFirstQueryLazy},
		{"ConcurrentSessions", BenchmarkConcurrentSessions},
		{"CatalogSessions", BenchmarkCatalogSessions},
		{"DiffUnion", BenchmarkDiffUnion},
		{"DiffKernels", BenchmarkDiffKernels},
		{"TraceView", BenchmarkTraceView},
		{"TraceCapture", BenchmarkTraceCapture},
		{"ImportPprof", BenchmarkImportPprof},
		{"Report", BenchmarkReport},
	}
	for _, bm := range benches {
		bm := bm
		t.Run(bm.name, func(t *testing.T) {
			// Sub-benchmark failures (b.Run) don't surface in the
			// BenchmarkResult, only in the parent's failed flag.
			failed := false
			r := testing.Benchmark(func(b *testing.B) {
				bm.fn(b)
				if b.Failed() {
					failed = true
				}
			})
			if r.N == 0 || failed {
				t.Fatalf("benchmark %s failed (see log above)", bm.name)
			}
		})
	}
}
