package repro

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/expdb"
)

// Catalog-scale session benchmark: the fleet claim behind the lifecycle
// layer is that serving sessions over many databases costs the same per
// session as serving over one — the catalog adds a lock and a map lookup,
// not per-database overhead. BenchmarkCatalogSessions measures one full
// session (acquire by name, open a session, run the hot-path query,
// close, release) over a warm catalog of 1 vs 100 published databases;
// allocs/op must stay flat (±10%) between the two. Baseline numbers live
// in BENCH_catalog.json.

// catalogBenchDir writes the fixed-seed synthetic CCT (v3 format) once
// and publishes it under n distinct series names in a fresh catalog.
func catalogBench(b *testing.B, n int) *catalog.Catalog {
	b.Helper()
	e := expdb.New(syntheticCCT(2_000, 17))
	var buf bytes.Buffer
	if err := e.WriteBinaryV3(&buf); err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	c := catalog.New(catalog.Config{})
	for i := 0; i < n; i++ {
		path := filepath.Join(dir, fmt.Sprintf("svc%03d__1.db", i))
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			b.Fatal(err)
		}
		if err := c.Publish(catalog.Key{Service: fmt.Sprintf("svc%03d", i), Ts: 1}, path); err != nil {
			b.Fatal(err)
		}
	}
	// Warm the catalog: every generation open and cached, as a serving
	// steady state would have it (the benchmark measures session cost over
	// a warm catalog, not open/mmap cost — BenchmarkMappedOpen covers that).
	for i := 0; i < n; i++ {
		snap, _, err := c.Acquire(fmt.Sprintf("svc%03d", i))
		if err != nil {
			b.Fatal(err)
		}
		// Fault columns in up front so first-touch checksums don't bill
		// whichever iteration reaches a database first.
		if err := snap.FaultAll(); err != nil {
			b.Fatal(err)
		}
		snap.Release()
	}
	return c
}

func benchCatalogSessions(b *testing.B, n int) {
	c := catalogBench(b, n)
	defer c.Close()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("svc%03d", i%n)
		snap, _, err := c.Acquire(name)
		if err != nil {
			b.Fatal(err)
		}
		s := engine.NewSession(snap)
		if resp := s.Do(engine.Request{Line: "hot CYCLES"}); resp.Err != "" || resp.Output == "" {
			s.Close()
			b.Fatalf("hot CYCLES over %s: err=%s", name, resp.Err)
		}
		s.Close()
		snap.Release()
	}
}

func BenchmarkCatalogSessions(b *testing.B) {
	for _, n := range []int{1, 100} {
		b.Run(fmt.Sprintf("dbs=%d", n), func(b *testing.B) {
			benchCatalogSessions(b, n)
		})
	}
}
